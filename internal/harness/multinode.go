package harness

import (
	"fmt"

	"fibersim/internal/arch"
	"fibersim/internal/core"
	"fibersim/internal/mpi"
	"fibersim/internal/simnet"
	"fibersim/internal/vtime"
)

// FigMultiNode is an extension beyond the paper's single-node study:
// weak scaling of a halo-exchange + allreduce proxy application across
// simulated nodes, comparing the A64FX's Tofu-D against InfiniBand EDR.
// It exercises the inter-node fabric models end to end.
func FigMultiNode(o Options) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Extension: multi-node weak scaling of a halo+allreduce proxy (4 ranks/node)",
		Columns: []string{"nodes", "tofud time", "tofud eff", "infiniband time", "infiniband eff"},
	}

	nodes := []int{1, 2, 4, 8, 16}
	iterations := 50
	haloElems := 16 << 10 // 128 KiB halo per direction
	if o.Size == 0 {      // SizeTest: keep it light
		iterations = 10
		haloElems = 4 << 10
	}

	run := func(fabricName string, n int) (float64, error) {
		m := arch.MustLookup("a64fx")
		mdl := core.NewModel(m)
		// One CMG per rank, 4 ranks per node.
		cores := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
		kern := core.MustKernel(core.Kernel{
			Name: "proxy-stencil", FlopsPerIter: 60, FMAFrac: 0.7,
			LoadBytesPerIter: 96, StoreBytesPerIter: 24,
			VectorizableFrac: 0.95, AutoVecFrac: 0.9,
			Pattern: core.PatternStream, WorkingSetBytes: 1 << 28,
		})
		cfg := mpi.Config{
			Ranks:        4 * n,
			RanksPerNode: 4,
			Fabric:       simnet.MustLookup(fabricName),
		}
		// Topology: Tofu is a torus with hop-dependent latency; the
		// InfiniBand cluster is a two-level fat tree (constant hops).
		if fabricName == "tofud" {
			cfg.Topology = simnet.TofuDTopology(n)
		} else {
			cfg.Topology = simnet.FatTreeHops(3)
		}
		res, err := mpi.Run(cfg, func(c *mpi.Comm) error {
			ex := core.Exec{ThreadCores: cores, HomeDomain: -1, Compiler: core.AsIs()}
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() - 1 + c.Size()) % c.Size()
			halo := make([]float64, haloElems)
			for it := 0; it < iterations; it++ {
				if _, err := mdl.Charge(c.Clock(), kern, 1e5, ex); err != nil {
					return err
				}
				if _, err := c.Sendrecv(right, 1, halo, left, 1); err != nil {
					return err
				}
				if _, err := c.Sendrecv(left, 2, halo, right, 2); err != nil {
					return err
				}
				if _, err := c.AllreduceScalar(mpi.OpSum, 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return res.MaxTime(), nil
	}

	var baseT, baseI float64
	for _, n := range nodes {
		tt, err := run("tofud", n)
		if err != nil {
			return nil, fmt.Errorf("harness: multinode tofud %d: %w", n, err)
		}
		ti, err := run("infiniband", n)
		if err != nil {
			return nil, fmt.Errorf("harness: multinode infiniband %d: %w", n, err)
		}
		if n == 1 {
			baseT, baseI = tt, ti
		}
		t.AddRow(fmt.Sprint(n),
			vtime.Format(tt), fmt.Sprintf("%.0f%%", baseT/tt*100),
			vtime.Format(ti), fmt.Sprintf("%.0f%%", baseI/ti*100))
	}
	t.Notes = append(t.Notes,
		"weak scaling: per-rank work constant, so 100% efficiency = flat time; the fabric's latency sets the efficiency loss",
		"extension beyond the paper (its evaluation is single-node); exercises the inter-node fabric models")
	return t, nil
}
