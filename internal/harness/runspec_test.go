package harness

import (
	"strings"
	"testing"

	"fibersim/internal/miniapps/common"
)

func TestRunSpecResolveDefaults(t *testing.T) {
	app, rc, err := RunSpec{App: "stream"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "stream" {
		t.Errorf("app = %s", app.Name())
	}
	if rc.Machine.Name != "a64fx" || rc.Procs != 1 || rc.Threads != 1 || rc.Size != common.SizeTest {
		t.Errorf("defaults not applied: %+v", rc)
	}
	if rc.Fault != nil {
		t.Error("clean spec resolved a fault schedule")
	}
}

func TestRunSpecResolveFull(t *testing.T) {
	app, rc, err := RunSpec{
		App: "mvmc", Machine: "skylake", Procs: 4, Threads: 12,
		Compiler: "tuned", Size: "small",
		Fault: "seed=7,straggler=0:1.5",
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "mvmc" || rc.Machine.Name != "skylake" || rc.Procs != 4 || rc.Threads != 12 {
		t.Errorf("resolved = %s %+v", app.Name(), rc)
	}
	if rc.Size != common.SizeSmall || rc.Fault == nil {
		t.Errorf("size/fault not resolved: %+v", rc)
	}
	// The resolved pair actually runs.
	res, err := app.Run(rc)
	if err != nil {
		t.Fatalf("resolved config does not run: %v", err)
	}
	if res.Time <= 0 {
		t.Errorf("run time = %g", res.Time)
	}
}

func TestRunSpecResolveRejects(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"unknown app", RunSpec{App: "fortnite"}, "unknown app"},
		{"unknown machine", RunSpec{App: "stream", Machine: "cray1"}, "unknown machine"},
		{"unknown compiler", RunSpec{App: "stream", Compiler: "gcc15"}, "unknown compiler"},
		{"unknown size", RunSpec{App: "stream", Size: "galactic"}, "unknown size"},
		{"bad fault", RunSpec{App: "stream", Fault: "chaos=yes"}, "fault"},
		{"oversubscribed", RunSpec{App: "stream", Procs: 48, Threads: 48}, "exceeds"},
	}
	for _, tc := range cases {
		_, _, err := tc.spec.Resolve()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
