package harness

import (
	"fmt"

	"fibersim/internal/arch"
	"fibersim/internal/miniapps/common"
)

// FigSizeStudy probes the abstract's data-set clause — "for some
// applications of as-is with small data set, A64FX shows poor
// performance" — by sweeping problem sizes and reporting the
// Skylake/A64FX time ratio (> 1 means the A64FX wins). At the tiny
// test size working sets sit in the Xeon's large LLC and the A64FX
// loses; as the data grows past the caches the HBM2 advantage takes
// over.
func FigSizeStudy(o Options) (*Table, error) {
	apps := o.Apps
	if len(apps) == 0 {
		// Apps whose medium size still runs in seconds.
		apps = []string{"ffvc", "nicam", "mvmc"}
	}
	t := &Table{
		ID:      "E3",
		Title:   "Extension: data-set size vs A64FX advantage (Skylake time / A64FX time; >1 = A64FX wins)",
		Columns: []string{"app", "test", "small", "medium"},
	}
	sizes := []common.Size{common.SizeTest, common.SizeSmall, common.SizeMedium}
	for _, name := range apps {
		app, err := common.Lookup(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, size := range sizes {
			ratio, err := sizeRatio(app, size)
			if err != nil {
				return nil, fmt.Errorf("harness: %s at %s: %w", name, size, err)
			}
			row = append(row, fmt.Sprintf("%.2f", ratio))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: ratios rise with data-set size for the memory-bound apps (caches stop helping the Xeon); the scalar as-is app stays below 1 at every size")
	return t, nil
}

// sizeRatio runs one app on both machines at their canonical node
// configuration and returns skylakeTime / a64fxTime.
func sizeRatio(app common.App, size common.Size) (float64, error) {
	times := map[string]float64{}
	for _, mn := range []string{"a64fx", "skylake"} {
		m := arch.MustLookup(mn)
		p, th := nodeDecomp(m)
		res, err := app.Run(common.RunConfig{Machine: m, Procs: p, Threads: th, Size: size})
		if err != nil {
			return 0, err
		}
		if !res.Verified {
			return 0, fmt.Errorf("verification failed on %s (check=%g)", mn, res.Check)
		}
		times[mn] = res.Time
	}
	return times["skylake"] / times["a64fx"], nil
}
