// Package tenant centralises per-tenant admission policy for the
// fibersim service path: token-bucket rate limiting with an injectable
// clock, and the weight grammar shared by fiberd's fair queue and
// fiberload's traffic mix.
//
// The package is deliberately tiny and dependency-free: it knows
// nothing about jobs, HTTP, or the model. fiberd wires a Limiter into
// the job manager's admission path (429 + per-tenant Retry-After);
// fiberload uses ParseWeights to split synthetic load across tenants.
//
// Like every model-scope package, tenant never reads the wall clock
// itself — the clock is injected at construction (fiberd passes
// time.Now, tests pass a fake), so limiter behaviour is exactly
// reproducible.
package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultKey is the tenant every request without an explicit tenant
// belongs to: untenanted clients share one bucket and one sub-queue
// rather than bypassing admission policy.
const DefaultKey = "default"

// Key canonicalises a tenant name: empty means DefaultKey.
func Key(name string) string {
	if strings.TrimSpace(name) == "" {
		return DefaultKey
	}
	return name
}

// Bucket parameterises one token bucket: Rate tokens refill per
// second up to Burst. Rate <= 0 means unlimited (Allow always
// admits); Burst < 1 is treated as 1, so a configured bucket always
// admits at least one request from rest.
type Bucket struct {
	Rate  float64
	Burst float64
}

func (b Bucket) burst() float64 {
	if b.Burst < 1 {
		return 1
	}
	return b.Burst
}

// bucketState is one tenant's live bucket.
type bucketState struct {
	tokens float64
	last   time.Time
}

// Limiter is a per-tenant token-bucket rate limiter. Every tenant
// gets the default Bucket unless SetBucket gave it its own; buckets
// materialise lazily on first Allow, full. All methods are safe for
// concurrent use.
type Limiter struct {
	mu    sync.Mutex
	def   Bucket
	per   map[string]Bucket
	state map[string]*bucketState
	now   func() time.Time
}

// NewLimiter builds a limiter with the given default bucket. The
// clock is required (model-scope code never reads time.Now itself):
// fiberd passes time.Now, tests pass a fake.
func NewLimiter(def Bucket, now func() time.Time) (*Limiter, error) {
	if now == nil {
		return nil, errors.New("tenant: NewLimiter needs a clock")
	}
	return &Limiter{
		def:   def,
		per:   map[string]Bucket{},
		state: map[string]*bucketState{},
		now:   now,
	}, nil
}

// SetBucket overrides the bucket for one tenant (a premium tenant's
// higher rate, an abusive tenant's clamp). It resets the tenant's
// live bucket to full under the new parameters.
func (l *Limiter) SetBucket(name string, b Bucket) {
	name = Key(name)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.per[name] = b
	delete(l.state, name)
}

// bucketFor returns the configured parameters for a tenant.
func (l *Limiter) bucketFor(name string) Bucket {
	if b, ok := l.per[name]; ok {
		return b
	}
	return l.def
}

// refillLocked brings a tenant's bucket up to date with the clock and
// returns it, creating it full on first sight.
func (l *Limiter) refillLocked(name string, cfg Bucket) *bucketState {
	st, ok := l.state[name]
	t := l.now()
	if !ok {
		st = &bucketState{tokens: cfg.burst(), last: t}
		l.state[name] = st
		return st
	}
	if dt := t.Sub(st.last).Seconds(); dt > 0 {
		st.tokens += cfg.Rate * dt
		if max := cfg.burst(); st.tokens > max {
			st.tokens = max
		}
	}
	st.last = t
	return st
}

// Allow spends one token from the tenant's bucket. When the bucket is
// empty it refuses and reports how long until the next token refills —
// the per-tenant Retry-After a 429 response should carry. A tenant
// whose bucket has Rate <= 0 is unlimited.
func (l *Limiter) Allow(name string) (bool, time.Duration) {
	name = Key(name)
	l.mu.Lock()
	defer l.mu.Unlock()
	cfg := l.bucketFor(name)
	if cfg.Rate <= 0 {
		return true, 0
	}
	st := l.refillLocked(name, cfg)
	if st.tokens >= 1 {
		st.tokens--
		return true, 0
	}
	wait := (1 - st.tokens) / cfg.Rate
	return false, time.Duration(wait * float64(time.Second))
}

// Tokens reports a tenant's current token balance (after refill), for
// the fiberd_tenant_tokens gauge. Unlimited tenants report their
// burst ceiling.
func (l *Limiter) Tokens(name string) float64 {
	name = Key(name)
	l.mu.Lock()
	defer l.mu.Unlock()
	cfg := l.bucketFor(name)
	if cfg.Rate <= 0 {
		return cfg.burst()
	}
	return l.refillLocked(name, cfg).tokens
}

// Weight is one tenant's relative share: fiberd's WDRR queue drains
// tenants proportionally to it; fiberload splits submissions by it.
type Weight struct {
	Name   string
	Weight int
}

// ParseWeights parses the shared tenant-weight grammar:
//
//	"alice:3,bob"   named tenants with optional weights (default 1)
//	"4"             integer shorthand: tenants t1..t4, weight 1 each
//
// Results come back sorted by name so callers that iterate (metric
// registration, weighted draws) are deterministic; use Map for lookup.
func ParseWeights(s string) ([]Weight, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errors.New("tenant: empty weight spec")
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("tenant: shorthand tenant count %d, want >= 1", n)
		}
		out := make([]Weight, 0, n)
		for i := 1; i <= n; i++ {
			out = append(out, Weight{Name: fmt.Sprintf("t%d", i), Weight: 1})
		}
		return out, nil
	}
	seen := map[string]bool{}
	var out []Weight
	for _, cell := range strings.Split(s, ",") {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(cell, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("tenant: weight cell %q has no tenant name", cell)
		}
		if seen[name] {
			return nil, fmt.Errorf("tenant: tenant %q listed twice", name)
		}
		seen[name] = true
		w := 1
		if hasWeight {
			n, err := strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("tenant: weight cell %q: weight must be a positive integer", cell)
			}
			w = n
		}
		out = append(out, Weight{Name: name, Weight: w})
	}
	if len(out) == 0 {
		return nil, errors.New("tenant: empty weight spec")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Override is one tenant's explicit bucket, parsed from fiberd's
// -tenant-override flag and applied via Limiter.SetBucket.
type Override struct {
	Name   string
	Bucket Bucket
}

// ParseOverrides parses the per-tenant bucket override grammar:
//
//	"alice=2:8,bob=0.5"   rate[:burst] per tenant, comma-separated
//
// Rate is requests/second; 0 makes the tenant unlimited. Burst
// defaults to the rate when omitted (the Bucket floor of 1 still
// applies, so "bob=0.5" admits single requests half a second apart).
// Results come back sorted by name so applying them is deterministic;
// a tenant listed twice is an error, not a silent overwrite.
func ParseOverrides(s string) ([]Override, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errors.New("tenant: empty override spec")
	}
	seen := map[string]bool{}
	var out []Override
	for _, cell := range strings.Split(s, ",") {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		name, spec, ok := strings.Cut(cell, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant: override cell %q: want name=rate or name=rate:burst", cell)
		}
		if seen[name] {
			return nil, fmt.Errorf("tenant: tenant %q overridden twice", name)
		}
		seen[name] = true
		rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil || rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
			return nil, fmt.Errorf("tenant: override cell %q: rate must be a finite number >= 0", cell)
		}
		b := Bucket{Rate: rate, Burst: rate}
		if hasBurst {
			burst, err := strconv.ParseFloat(strings.TrimSpace(burstStr), 64)
			if err != nil || burst < 1 || math.IsNaN(burst) || math.IsInf(burst, 0) {
				return nil, fmt.Errorf("tenant: override cell %q: burst must be a finite number >= 1", cell)
			}
			b.Burst = burst
		}
		out = append(out, Override{Name: name, Bucket: b})
	}
	if len(out) == 0 {
		return nil, errors.New("tenant: empty override spec")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Map folds a weight list into the lookup shape jobs.Config wants.
func Map(ws []Weight) map[string]int {
	out := make(map[string]int, len(ws))
	for _, w := range ws {
		out[w.Name] = w.Weight
	}
	return out
}
