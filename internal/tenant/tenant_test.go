package tenant

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock: limiter behaviour under it is
// exactly reproducible, which is the point of the injected-clock
// contract.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestNewLimiterRequiresClock(t *testing.T) {
	if _, err := NewLimiter(Bucket{Rate: 1, Burst: 1}, nil); err == nil {
		t.Fatal("NewLimiter(nil clock) succeeded, want error")
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLimiter(Bucket{Rate: 2, Burst: 3}, clk.now)
	if err != nil {
		t.Fatal(err)
	}

	// The bucket starts full: exactly Burst admissions back-to-back.
	for i := 0; i < 3; i++ {
		ok, _ := l.Allow("alice")
		if !ok {
			t.Fatalf("admission %d refused within burst", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("admission 4 allowed, want refused (bucket empty)")
	}
	// Empty bucket at 2 tokens/s: the next token is 500ms away.
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("retry-after = %v, want %v", retry, want)
	}

	// After 1s two tokens have refilled.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("post-refill admission %d refused", i)
		}
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("third post-refill admission allowed, want refused")
	}
}

func TestLimiterTenantsAreIndependent(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLimiter(Bucket{Rate: 1, Burst: 1}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := l.Allow("greedy"); !ok {
		t.Fatal("greedy's first admission refused")
	}
	if ok, _ := l.Allow("greedy"); ok {
		t.Fatal("greedy's second admission allowed, want refused")
	}
	// greedy exhausting its bucket must not touch paced's.
	if ok, _ := l.Allow("paced"); !ok {
		t.Fatal("paced refused because greedy drained its own bucket")
	}
}

func TestLimiterUnlimitedAndOverrides(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLimiter(Bucket{Rate: 0}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	// Rate <= 0 is unlimited.
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("anyone"); !ok {
			t.Fatalf("unlimited tenant refused on admission %d", i)
		}
	}
	// A per-tenant override clamps just that tenant.
	l.SetBucket("abuser", Bucket{Rate: 1, Burst: 1})
	if ok, _ := l.Allow("abuser"); !ok {
		t.Fatal("abuser's burst admission refused")
	}
	if ok, _ := l.Allow("abuser"); ok {
		t.Fatal("abuser's second admission allowed, want clamped")
	}
	if ok, _ := l.Allow("anyone"); !ok {
		t.Fatal("override leaked onto another tenant")
	}
}

func TestLimiterTokensGaugeAndDefaultKey(t *testing.T) {
	clk := newFakeClock()
	l, err := NewLimiter(Bucket{Rate: 1, Burst: 4}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Tokens("fresh"); got != 4 {
		t.Fatalf("fresh tenant tokens = %v, want 4", got)
	}
	// "" and DefaultKey are the same bucket.
	if ok, _ := l.Allow(""); !ok {
		t.Fatal("default-tenant admission refused")
	}
	if got := l.Tokens(DefaultKey); got != 3 {
		t.Fatalf("default tokens after one spend = %v, want 3", got)
	}
}

func TestParseWeights(t *testing.T) {
	cases := []struct {
		in   string
		want []Weight
	}{
		{"2", []Weight{{"t1", 1}, {"t2", 1}}},
		{"alice:3,bob", []Weight{{"alice", 3}, {"bob", 1}}},
		{" bob , alice:2 ", []Weight{{"alice", 2}, {"bob", 1}}},
		{"solo:5", []Weight{{"solo", 5}}},
	}
	for _, c := range cases {
		got, err := ParseWeights(c.in)
		if err != nil {
			t.Fatalf("ParseWeights(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseWeights(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	for _, bad := range []string{"", "0", "-3", "alice:0", "alice:x", ":2", "a,a", ","} {
		if _, err := ParseWeights(bad); err == nil {
			t.Fatalf("ParseWeights(%q) succeeded, want error", bad)
		}
	}
}

func TestParseOverrides(t *testing.T) {
	cases := []struct {
		in   string
		want []Override
	}{
		{"alice=2:8,bob=0.5", []Override{
			{"alice", Bucket{Rate: 2, Burst: 8}},
			{"bob", Bucket{Rate: 0.5, Burst: 0.5}},
		}},
		{" bob=1 , alice=4:16 ", []Override{
			{"alice", Bucket{Rate: 4, Burst: 16}},
			{"bob", Bucket{Rate: 1, Burst: 1}},
		}},
		{"vip=0", []Override{{"vip", Bucket{Rate: 0, Burst: 0}}}},
	}
	for _, c := range cases {
		got, err := ParseOverrides(c.in)
		if err != nil {
			t.Fatalf("ParseOverrides(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseOverrides(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	for _, bad := range []string{
		"", ",", "alice", "alice=", "alice=x", "alice=-1", "alice=NaN",
		"alice=1:0", "alice=1:x", "=2", "a=1,a=2",
	} {
		if _, err := ParseOverrides(bad); err == nil {
			t.Fatalf("ParseOverrides(%q) succeeded, want error", bad)
		}
	}
}

func TestOverridesDriveLimiter(t *testing.T) {
	clk := &fakeClock{}
	l, err := NewLimiter(Bucket{Rate: 1, Burst: 1}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	ovs, err := ParseOverrides("vip=0,clamped=1:2")
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ovs {
		l.SetBucket(o.Name, o.Bucket)
	}
	// vip is unlimited: rate 0 admits everything.
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("vip"); !ok {
			t.Fatalf("unlimited override refused admission %d", i)
		}
	}
	// clamped gets its own burst of 2, then refuses.
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("clamped"); !ok {
			t.Fatalf("clamped override refused within burst (%d)", i)
		}
	}
	if ok, wait := l.Allow("clamped"); ok || wait <= 0 {
		t.Fatalf("clamped override admitted past burst (wait %v)", wait)
	}
}

func TestMap(t *testing.T) {
	got := Map([]Weight{{"a", 2}, {"b", 1}})
	if !reflect.DeepEqual(got, map[string]int{"a": 2, "b": 1}) {
		t.Fatalf("Map = %v", got)
	}
}
