package mpi

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// CommStats counts the communication operations of a run, in the
// spirit of mpiP-style profiling: how many point-to-point messages and
// bytes moved, and how many collectives of each kind ran (counted once
// per rank entering).
type CommStats struct {
	// Sends is the number of point-to-point messages posted.
	Sends int64
	// SendBytes is the payload total of those messages.
	SendBytes int64
	// Collectives counts entries per operation name ("barrier",
	// "allreduce", ...).
	Collectives map[string]int64
}

// String renders the stats compactly.
func (s CommStats) String() string {
	names := make([]string, 0, len(s.Collectives))
	for n := range s.Collectives {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := []string{fmt.Sprintf("sends=%d bytes=%d", s.Sends, s.SendBytes)}
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, s.Collectives[n]))
	}
	return strings.Join(parts, " ")
}

// statCounters is the World's lock-free accumulator.
type statCounters struct {
	sends     atomic.Int64
	sendBytes atomic.Int64
	coll      map[string]*atomic.Int64 // fixed key set, created up front
}

// collectiveKinds is the fixed set of collective operation names.
var collectiveKinds = []string{
	"barrier", "bcast", "reduce", "allreduce", "gather",
	"allgather", "alltoall", "scatter", "reducescatter", "split",
}

func newStatCounters() *statCounters {
	sc := &statCounters{coll: map[string]*atomic.Int64{}}
	for _, k := range collectiveKinds {
		sc.coll[k] = &atomic.Int64{}
	}
	return sc
}

// countSend records one point-to-point message.
func (sc *statCounters) countSend(bytes int64) {
	sc.sends.Add(1)
	sc.sendBytes.Add(bytes)
}

// countCollective records one rank entering a collective whose op
// signature starts with the operation name.
func (sc *statCounters) countCollective(op string) {
	name := op
	if i := strings.IndexByte(op, '/'); i >= 0 {
		name = op[:i]
	}
	if c, ok := sc.coll[name]; ok {
		c.Add(1)
	}
}

// snapshot converts the counters into a CommStats.
func (sc *statCounters) snapshot() CommStats {
	out := CommStats{
		Sends:       sc.sends.Load(),
		SendBytes:   sc.sendBytes.Load(),
		Collectives: map[string]int64{},
	}
	for name, c := range sc.coll {
		if v := c.Load(); v > 0 {
			out.Collectives[name] = v
		}
	}
	return out
}
