package mpi

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// CommStats counts the communication operations of a run, in the
// spirit of mpiP-style profiling: how many point-to-point messages and
// bytes moved, and how many collectives of each kind ran (counted once
// per rank entering) with the payload bytes they carried.
type CommStats struct {
	// Sends is the number of point-to-point messages posted.
	Sends int64
	// SendBytes is the payload total of those messages.
	SendBytes int64
	// Collectives counts entries per operation name ("barrier",
	// "allreduce", ...).
	Collectives map[string]int64
	// CollectiveBytes sums the payload bytes per operation name, as
	// contributed by each entering rank (a barrier carries none; a
	// bcast counts the root's buffer once).
	CollectiveBytes map[string]int64
}

// String renders the stats compactly.
func (s CommStats) String() string {
	names := make([]string, 0, len(s.Collectives))
	for n := range s.Collectives {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := []string{fmt.Sprintf("sends=%d bytes=%d", s.Sends, s.SendBytes)}
	for _, n := range names {
		p := fmt.Sprintf("%s=%d", n, s.Collectives[n])
		if b := s.CollectiveBytes[n]; b > 0 {
			p += fmt.Sprintf("(%dB)", b)
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, " ")
}

// MergeCommStats aggregates the stats of several worlds (e.g. the
// per-replica worlds of a multi-node experiment) into one total.
func MergeCommStats(stats ...CommStats) CommStats {
	out := CommStats{
		Collectives:     map[string]int64{},
		CollectiveBytes: map[string]int64{},
	}
	for _, s := range stats {
		out.Sends += s.Sends
		out.SendBytes += s.SendBytes
		for n, v := range s.Collectives {
			out.Collectives[n] += v
		}
		for n, v := range s.CollectiveBytes {
			out.CollectiveBytes[n] += v
		}
	}
	return out
}

// statCounters is the World's lock-free accumulator.
type statCounters struct {
	sends     atomic.Int64
	sendBytes atomic.Int64
	coll      map[string]*atomic.Int64 // fixed key set, created up front
	collBytes map[string]*atomic.Int64
}

// collectiveKinds is the fixed set of collective operation names.
var collectiveKinds = []string{
	"barrier", "bcast", "reduce", "allreduce", "gather",
	"allgather", "alltoall", "scatter", "reducescatter", "split",
}

func newStatCounters() *statCounters {
	sc := &statCounters{
		coll:      map[string]*atomic.Int64{},
		collBytes: map[string]*atomic.Int64{},
	}
	for _, k := range collectiveKinds {
		sc.coll[k] = &atomic.Int64{}
		sc.collBytes[k] = &atomic.Int64{}
	}
	return sc
}

// countSend records one point-to-point message.
func (sc *statCounters) countSend(bytes int64) {
	sc.sends.Add(1)
	sc.sendBytes.Add(bytes)
}

// collectiveName extracts the operation name from an op signature.
func collectiveName(op string) string {
	if i := strings.IndexByte(op, '/'); i >= 0 {
		return op[:i]
	}
	return op
}

// countCollective records one rank entering a collective whose op
// signature starts with the operation name, carrying bytes of payload.
func (sc *statCounters) countCollective(op string, bytes int64) {
	name := collectiveName(op)
	if c, ok := sc.coll[name]; ok {
		c.Add(1)
	}
	if bytes > 0 {
		if c, ok := sc.collBytes[name]; ok {
			c.Add(bytes)
		}
	}
}

// snapshot converts the counters into a CommStats.
func (sc *statCounters) snapshot() CommStats {
	out := CommStats{
		Sends:           sc.sends.Load(),
		SendBytes:       sc.sendBytes.Load(),
		Collectives:     map[string]int64{},
		CollectiveBytes: map[string]int64{},
	}
	for name, c := range sc.coll {
		if v := c.Load(); v > 0 {
			out.Collectives[name] = v
		}
	}
	for name, c := range sc.collBytes {
		if v := c.Load(); v > 0 {
			out.CollectiveBytes[name] = v
		}
	}
	return out
}
