package mpi

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fibersim/internal/obs"
	"fibersim/internal/vtime"
)

// phaser is the rendezvous structure behind collectives: all ranks of a
// communicator deposit their contribution; the last arriver verifies
// that everyone called the same operation, computes the result and the
// synchronized virtual time, and releases everyone.
type phaser struct {
	mu      sync.Mutex
	size    int
	entries []phaserEntry
	cur     *generation
}

// generation carries the result of one collective round; waiters keep a
// pointer so later rounds cannot overwrite what they read.
type generation struct {
	done   chan struct{}
	result any
	err    error
}

type phaserEntry struct {
	rank  int
	op    string // operation signature, for mismatch detection
	value any
	clock *vtime.Clock
}

func (w *World) phaserFor(commID string, size int) *phaser {
	w.phMu.Lock()
	defer w.phMu.Unlock()
	ph, ok := w.phaser[commID]
	if !ok {
		ph = &phaser{size: size, cur: &generation{done: make(chan struct{})}}
		w.phaser[commID] = ph
	}
	return ph
}

// rendezvous runs one collective round. op is the operation signature
// (name plus shape); bytes is this rank's payload contribution (for
// accounting only); value is this rank's contribution; combine runs on
// the last arriver with all entries (sorted by rank) and returns the
// shared result; cost returns the collective's virtual cost given the
// synchronized start time. The returned value is combine's result.
func (c *Comm) rendezvous(op string, bytes int64, value any,
	combine func(entries []phaserEntry) (any, error),
	cost func() float64) (any, error) {

	if err := c.FaultCheck(); err != nil {
		return nil, err
	}
	c.world.stats.countCollective(op, bytes)
	traceStart := c.Clock().Now()
	// Self-observability: the whole rendezvous (entry, combine, wait)
	// is collective cost, except the clock-sync loop measured below as
	// vtime-advance — the stages stay disjoint.
	costStart := c.world.cost.Begin()
	var syncCost time.Duration
	defer func() {
		c.world.cost.EndExcluding(obs.StageCollective, costStart, syncCost)
		end := c.Clock().Now()
		c.Trace(op, "mpi", traceStart, end)
		c.world.rec.MPIOp(c.global(c.rank), collectiveName(op), -1, bytes, end-traceStart)
	}()
	ph := c.world.phaserFor(c.id, len(c.group))
	ph.mu.Lock()
	gen := ph.cur
	ph.entries = append(ph.entries, phaserEntry{
		rank: c.rank, op: op, value: value, clock: c.Clock(),
	})
	if len(ph.entries) == ph.size {
		// Last arriver: validate, combine, synchronize, release.
		sort.Slice(ph.entries, func(i, j int) bool { return ph.entries[i].rank < ph.entries[j].rank })
		for _, e := range ph.entries {
			if e.op != op {
				gen.err = fmt.Errorf("mpi: mismatched collectives on %q: rank %d called %s, rank %d called %s",
					c.id, e.rank, e.op, c.rank, op)
				break
			}
		}
		if gen.err == nil {
			seen := map[int]bool{}
			for _, e := range ph.entries {
				if seen[e.rank] {
					gen.err = fmt.Errorf("mpi: rank %d entered collective %s twice", e.rank, op)
					break
				}
				seen[e.rank] = true
			}
		}
		if gen.err == nil {
			gen.result, gen.err = combine(ph.entries)
		}
		clocks := make([]*vtime.Clock, len(ph.entries))
		for i, e := range ph.entries {
			clocks[i] = e.clock
		}
		start := vtime.Max(vtime.Comm, clocks...)
		syncT := start + cost()
		syncStart := c.world.cost.Begin()
		for _, cl := range clocks {
			cl.AdvanceTo(syncT, vtime.Comm)
		}
		syncCost = c.world.cost.End(obs.StageVtimeAdvance, syncStart)
		// Reset for the next generation before releasing waiters.
		ph.entries = nil
		ph.cur = &generation{done: make(chan struct{})}
		ph.mu.Unlock()
		close(gen.done)
		return gen.result, gen.err
	}
	ph.mu.Unlock()

	g := c.global(c.rank)
	c.world.setBlocked(g, BlockedOp{Rank: g, Op: op, Peer: -1, Tag: -1, Clock: traceStart})
	deadline := time.NewTimer(c.world.cfg.Timeout)
	defer deadline.Stop()
	select {
	case <-gen.done:
		c.world.clearBlocked(g)
	case <-c.world.abortCh:
		// Keep the blocked entry so deadlock dumps show where this rank hung.
		return nil, c.world.abortedError()
	case <-deadline.C:
		return nil, c.world.deadlock(g)
	}
	return gen.result, gen.err
}

// Barrier blocks until all ranks of the communicator arrive and
// synchronizes their virtual clocks.
func (c *Comm) Barrier() error {
	f := c.world.collectiveFabric(c.group)
	_, err := c.rendezvous("barrier", 0, nil,
		func([]phaserEntry) (any, error) { return nil, nil },
		func() float64 { return f.Barrier(len(c.group)) })
	return err
}

// Bcast broadcasts root's buffer to all ranks; non-root ranks pass nil
// and receive the copy. All ranks receive the result slice.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	f := c.world.collectiveFabric(c.group)
	var n int64
	res, err := c.rendezvous(fmt.Sprintf("bcast/root=%d", root), float64Bytes(len(data)), data,
		func(entries []phaserEntry) (any, error) {
			buf, _ := entries[root].value.([]float64)
			if buf == nil {
				return nil, fmt.Errorf("mpi: bcast root %d supplied no data", root)
			}
			n = float64Bytes(len(buf))
			return append([]float64(nil), buf...), nil
		},
		func() float64 { return f.Bcast(len(c.group), n) })
	if err != nil {
		return nil, err
	}
	// Every rank gets its own copy so receivers can mutate freely.
	return append([]float64(nil), res.([]float64)...), nil
}

// reduceEntries folds the per-rank vectors element-wise with op.
func reduceEntries(op Op, entries []phaserEntry) ([]float64, error) {
	var acc []float64
	for _, e := range entries {
		v, ok := e.value.([]float64)
		if !ok {
			return nil, fmt.Errorf("mpi: reduce rank %d supplied no data", e.rank)
		}
		if acc == nil {
			acc = append([]float64(nil), v...)
			continue
		}
		if len(v) != len(acc) {
			return nil, fmt.Errorf("mpi: reduce length mismatch: rank %d has %d elements, expected %d",
				e.rank, len(v), len(acc))
		}
		for i, x := range v {
			acc[i] = op.apply(acc[i], x)
		}
	}
	return acc, nil
}

// Reduce combines data element-wise across ranks with op; the result is
// returned on root and nil elsewhere.
func (c *Comm) Reduce(root int, op Op, data []float64) ([]float64, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	f := c.world.collectiveFabric(c.group)
	n := float64Bytes(len(data))
	res, err := c.rendezvous(fmt.Sprintf("reduce/%s/root=%d/n=%d", op, root, len(data)), n, data,
		func(entries []phaserEntry) (any, error) { return reduceEntries(op, entries) },
		func() float64 { return f.Reduce(len(c.group), n, c.world.cfg.ReduceGamma) })
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return res.([]float64), nil
}

// Allreduce combines data element-wise across ranks; every rank gets
// the result.
func (c *Comm) Allreduce(op Op, data []float64) ([]float64, error) {
	f := c.world.collectiveFabric(c.group)
	n := float64Bytes(len(data))
	res, err := c.rendezvous(fmt.Sprintf("allreduce/%s/n=%d", op, len(data)), n, data,
		func(entries []phaserEntry) (any, error) { return reduceEntries(op, entries) },
		func() float64 { return f.Allreduce(len(c.group), n, c.world.cfg.ReduceGamma) })
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res.([]float64)...), nil
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(op Op, v float64) (float64, error) {
	res, err := c.Allreduce(op, []float64{v})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// Gather collects every rank's buffer on root, indexed by rank; nil is
// returned on non-root ranks. Buffers may have different lengths
// (gatherv semantics).
func (c *Comm) Gather(root int, data []float64) ([][]float64, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	f := c.world.collectiveFabric(c.group)
	n := float64Bytes(len(data))
	res, err := c.rendezvous(fmt.Sprintf("gather/root=%d", root), n, data,
		func(entries []phaserEntry) (any, error) {
			out := make([][]float64, len(entries))
			for i, e := range entries {
				v, _ := e.value.([]float64)
				out[i] = append([]float64(nil), v...)
			}
			return out, nil
		},
		func() float64 { return f.Gather(len(c.group), n) })
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return res.([][]float64), nil
}

// Allgather collects every rank's buffer on every rank, indexed by rank.
func (c *Comm) Allgather(data []float64) ([][]float64, error) {
	f := c.world.collectiveFabric(c.group)
	n := float64Bytes(len(data))
	res, err := c.rendezvous("allgather", n, data,
		func(entries []phaserEntry) (any, error) {
			out := make([][]float64, len(entries))
			for i, e := range entries {
				v, _ := e.value.([]float64)
				out[i] = append([]float64(nil), v...)
			}
			return out, nil
		},
		func() float64 { return f.Allgather(len(c.group), n) })
	if err != nil {
		return nil, err
	}
	all := res.([][]float64)
	out := make([][]float64, len(all))
	for i, v := range all {
		out[i] = append([]float64(nil), v...)
	}
	return out, nil
}

// Alltoall sends chunks[j] to rank j and returns the chunks received,
// indexed by source rank. Every rank must pass exactly Size() chunks.
func (c *Comm) Alltoall(chunks [][]float64) ([][]float64, error) {
	p := len(c.group)
	if len(chunks) != p {
		return nil, fmt.Errorf("mpi: alltoall needs %d chunks, got %d", p, len(chunks))
	}
	var maxChunk, total int64
	for _, ch := range chunks {
		b := float64Bytes(len(ch))
		total += b
		if b > maxChunk {
			maxChunk = b
		}
	}
	f := c.world.collectiveFabric(c.group)
	res, err := c.rendezvous("alltoall", total, chunks,
		func(entries []phaserEntry) (any, error) {
			// matrix[src][dst]
			matrix := make([][][]float64, p)
			for i, e := range entries {
				v, ok := e.value.([][]float64)
				if !ok || len(v) != p {
					return nil, fmt.Errorf("mpi: alltoall rank %d supplied %d chunks, want %d", e.rank, len(v), p)
				}
				matrix[i] = v
			}
			return matrix, nil
		},
		func() float64 { return f.Alltoall(p, maxChunk) })
	if err != nil {
		return nil, err
	}
	matrix := res.([][][]float64)
	out := make([][]float64, p)
	for src := 0; src < p; src++ {
		out[src] = append([]float64(nil), matrix[src][c.rank]...)
	}
	return out, nil
}

// Scatter distributes root's chunks: rank i receives chunks[i]. Only
// the root's chunks argument is used; other ranks pass nil.
func (c *Comm) Scatter(root int, chunks [][]float64) ([]float64, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	f := c.world.collectiveFabric(c.group)
	var sendTotal int64
	for _, ch := range chunks {
		sendTotal += float64Bytes(len(ch))
	}
	var maxChunk int64
	res, err := c.rendezvous(fmt.Sprintf("scatter/root=%d", root), sendTotal, chunks,
		func(entries []phaserEntry) (any, error) {
			v, _ := entries[root].value.([][]float64)
			if len(v) != len(c.group) {
				return nil, fmt.Errorf("mpi: scatter root %d supplied %d chunks, want %d",
					root, len(v), len(c.group))
			}
			out := make([][]float64, len(v))
			for i, ch := range v {
				out[i] = append([]float64(nil), ch...)
				if b := float64Bytes(len(ch)); b > maxChunk {
					maxChunk = b
				}
			}
			return out, nil
		},
		func() float64 { return f.Bcast(len(c.group), maxChunk) })
	if err != nil {
		return nil, err
	}
	return res.([][]float64)[c.rank], nil
}

// ReduceScatter combines data element-wise across ranks and scatters
// the result: with n = len(data) divisible by Size(), rank i receives
// elements [i*n/p, (i+1)*n/p) of the reduction.
func (c *Comm) ReduceScatter(op Op, data []float64) ([]float64, error) {
	p := len(c.group)
	if len(data)%p != 0 {
		return nil, fmt.Errorf("mpi: reduce-scatter length %d not divisible by %d ranks", len(data), p)
	}
	f := c.world.collectiveFabric(c.group)
	n := float64Bytes(len(data))
	res, err := c.rendezvous(fmt.Sprintf("reducescatter/%s/n=%d", op, len(data)), n, data,
		func(entries []phaserEntry) (any, error) { return reduceEntries(op, entries) },
		func() float64 { return f.Reduce(p, n, c.world.cfg.ReduceGamma) })
	if err != nil {
		return nil, err
	}
	full := res.([]float64)
	chunk := len(full) / p
	return append([]float64(nil), full[c.rank*chunk:(c.rank+1)*chunk]...), nil
}

// Split partitions the communicator by color; ranks passing the same
// color form a new communicator ordered by key (ties broken by old
// rank). Every rank of c must call Split.
func (c *Comm) Split(color, key int) (*Comm, error) {
	type ck struct{ color, key, rank int }
	res, err := c.rendezvous("split", 0, ck{color, key, c.rank},
		func(entries []phaserEntry) (any, error) {
			all := make([]ck, len(entries))
			for i, e := range entries {
				all[i] = e.value.(ck)
			}
			return all, nil
		},
		func() float64 { return c.world.collectiveFabric(c.group).Barrier(len(c.group)) })
	if err != nil {
		return nil, err
	}
	all := res.([]ck)
	var mine []ck
	for _, e := range all {
		if e.color == color {
			mine = append(mine, e)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, e := range mine {
		group[i] = c.global(e.rank)
		if e.rank == c.rank {
			newRank = i
		}
	}
	// Identify the new communicator by its exact membership so distinct
	// splits never share a phaser.
	id := fmt.Sprintf("%s/split(c=%d)%v", c.id, color, group)
	return &Comm{world: c.world, id: id, rank: newRank, group: group}, nil
}
