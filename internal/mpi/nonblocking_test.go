package mpi

import (
	"testing"
)

func TestIsendIrecv(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 5, []float64{7})
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		req, err := c.Irecv(0, 5)
		if err != nil {
			return err
		}
		got, err := req.Wait()
		if err != nil {
			return err
		}
		if got[0] != 7 {
			t.Errorf("Irecv got %v", got)
		}
		// Waiting again returns the same data.
		again, err := req.Wait()
		if err != nil || again[0] != 7 {
			t.Error("second Wait should repeat the outcome")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvPostEarly(t *testing.T) {
	// Post receives before sending: the classic halo-exchange shape.
	const p = 4
	_, err := Run(fastCfg(p), func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() + p - 1) % p
		rFromLeft, err := c.Irecv(left, 1)
		if err != nil {
			return err
		}
		rFromRight, err := c.Irecv(right, 2)
		if err != nil {
			return err
		}
		if err := c.Send(right, 1, []float64{float64(c.Rank())}); err != nil {
			return err
		}
		if err := c.Send(left, 2, []float64{float64(c.Rank())}); err != nil {
			return err
		}
		if err := WaitAll(rFromLeft, rFromRight); err != nil {
			return err
		}
		gotL, _ := rFromLeft.Wait()
		gotR, _ := rFromRight.Wait()
		if gotL[0] != float64(left) || gotR[0] != float64(right) {
			t.Errorf("rank %d halo wrong: %v %v", c.Rank(), gotL, gotR)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvInvalidSource(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if _, err := c.Irecv(7, 0); err == nil {
			t.Error("Irecv from invalid rank must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllNil(t *testing.T) {
	if err := WaitAll(nil); err == nil {
		t.Error("WaitAll(nil) must error")
	}
}
