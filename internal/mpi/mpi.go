// Package mpi is a functional, in-process MPI runtime.
//
// Ranks are goroutines; messages really travel between them, so
// matching, ordering, deadlock and misuse are all observable in tests.
// Timing is virtual: every rank owns a vtime.Clock, point-to-point
// completion follows the conservative rule
//
//	recvDone = max(recvClock, sendClock + fabric.PointToPoint(bytes))
//
// and collectives synchronize all clocks to max(clocks) + an analytic
// cost from internal/simnet. Ranks are placed on simulated nodes
// (Config.RanksPerNode); intra-node pairs use the shared-memory fabric,
// inter-node pairs the machine's fabric.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fibersim/internal/fault"
	"fibersim/internal/obs"
	"fibersim/internal/simnet"
	"fibersim/internal/trace"
	"fibersim/internal/vtime"
)

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// ProcNull is the null process: Send to it is a no-op and Recv from it
// returns immediately with no data, the standard idiom for
// non-periodic halo exchanges at domain boundaries.
const ProcNull = -2

// Op is a reduction operator.
type Op int

const (
	// OpSum adds elements.
	OpSum Op = iota
	// OpMax takes the element-wise maximum.
	OpMax
	// OpMin takes the element-wise minimum.
	OpMin
	// OpProd multiplies elements.
	OpProd
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

func (o Op) apply(acc, v float64) float64 {
	switch o {
	case OpSum:
		return acc + v
	case OpMax:
		if v > acc {
			return v
		}
		return acc
	case OpMin:
		if v < acc {
			return v
		}
		return acc
	case OpProd:
		return acc * v
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
	}
}

// ErrTimeout is returned when a blocked operation exceeds the
// configured real-time watchdog (usually indicating deadlock or a
// missing partner).
var ErrTimeout = errors.New("mpi: operation timed out (deadlock or missing partner?)")

// Config describes an MPI world.
type Config struct {
	// Ranks is the number of MPI processes.
	Ranks int
	// RanksPerNode places ranks onto simulated nodes; 0 means all ranks
	// share one node.
	RanksPerNode int
	// Fabric is the inter-node network; nil defaults to "tofud".
	Fabric *simnet.Fabric
	// Intra is the intra-node transport; nil defaults to "shm".
	Intra *simnet.Fabric
	// Timeout is the real-time watchdog for blocked operations; zero
	// defaults to 30 s.
	Timeout time.Duration
	// ReduceGamma is the per-byte local combine cost charged inside
	// reductions; zero defaults to 0.25 ns/byte.
	ReduceGamma float64
	// PairScale, when non-nil, multiplies the point-to-point cost
	// between two global ranks — the hook the launcher uses to make
	// messages between ranks in different NUMA domains slightly more
	// expensive than within a domain.
	PairScale func(src, dst int) float64
	// Topology, when non-nil, gives hop distances between NODES; each
	// hop beyond the first adds Fabric.HopLatency to inter-node
	// messages (see simnet.TorusHops / TofuDTopology).
	Topology simnet.Topology
	// TraceCapacity, when positive, records up to this many timeline
	// events per rank (kernel charges via Comm.Trace, MPI operations
	// automatically); Result.Traces carries the logs.
	TraceCapacity int
	// Recorder, when non-nil, receives per-op/per-peer communication
	// spans (bytes moved, virtual wait time) from every rank.
	Recorder *obs.Recorder
	// Fault, when non-nil, injects the compiled fault schedule: link
	// faults scale point-to-point costs in post, and FaultCheck fires
	// scheduled rank crashes as world-wide aborts.
	Fault *fault.Injector
	// Cost, when non-nil, receives the simulator's own wall-clock
	// spend: collective rendezvous and virtual-clock advancement are
	// charged to their self-observability stages.
	Cost *obs.CostRecorder
}

func (c Config) withDefaults() Config {
	if c.RanksPerNode <= 0 || c.RanksPerNode > c.Ranks {
		c.RanksPerNode = c.Ranks
	}
	if c.Fabric == nil {
		c.Fabric = simnet.MustLookup("tofud")
	}
	if c.Intra == nil {
		c.Intra = simnet.MustLookup("shm")
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.ReduceGamma <= 0 {
		c.ReduceGamma = 0.25e-9
	}
	return c
}

// message is one in-flight point-to-point message.
type message struct {
	src, tag int
	data     []float64
	raw      []byte
	bytes    int64
	avail    float64 // virtual time at which the payload is available
	seq      uint64  // arrival order for AnySource fairness
	flow     uint64  // world-unique message id, links send/recv trace slices
}

// mailbox holds posted-but-unreceived messages for one rank.
type mailbox struct {
	mu     sync.Mutex
	queue  []*message
	notify chan struct{} // replaced on every post
	seq    uint64
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{})}
}

func (mb *mailbox) post(m *message) {
	mb.mu.Lock()
	m.seq = mb.seq
	mb.seq++
	mb.queue = append(mb.queue, m)
	close(mb.notify)
	mb.notify = make(chan struct{})
	mb.mu.Unlock()
}

// take removes and returns the oldest message matching (src, tag), or
// nil plus the channel to wait on.
func (mb *mailbox) take(src, tag int) (*message, chan struct{}) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	best := -1
	for i, m := range mb.queue {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			if best == -1 || m.seq < mb.queue[best].seq {
				best = i
			}
		}
	}
	if best == -1 {
		return nil, mb.notify
	}
	m := mb.queue[best]
	mb.queue = append(mb.queue[:best], mb.queue[best+1:]...)
	return m, nil
}

// World is a running MPI job.
type World struct {
	cfg    Config
	boxes  []*mailbox
	clocks []*vtime.Clock
	phaser map[string]*phaser // per-communicator collective context
	phMu   sync.Mutex
	stats  *statCounters
	traces []*trace.Log // per rank, nil when tracing is off
	rec    *obs.Recorder
	cost   *obs.CostRecorder
	msgID  atomic.Uint64 // flow ids; 0 is reserved for "no flow"

	inj       *fault.Injector             // nil on clean runs
	blocked   []atomic.Pointer[BlockedOp] // per-rank blocked-op table
	abortCh   chan struct{}               // closed on world-wide abort
	abortOnce sync.Once
	abortErr  error // root cause; written once before abortCh closes
}

// fabricFor returns the transport between two global ranks.
func (w *World) fabricFor(a, b int) *simnet.Fabric {
	if a/w.cfg.RanksPerNode == b/w.cfg.RanksPerNode {
		return w.cfg.Intra
	}
	return w.cfg.Fabric
}

// pairScale returns the placement-dependent cost multiplier for a
// message between two global ranks.
func (w *World) pairScale(a, b int) float64 {
	if w.cfg.PairScale == nil {
		return 1
	}
	s := w.cfg.PairScale(a, b)
	if s < 1 {
		return 1
	}
	return s
}

// hopExtra returns the topology-dependent extra latency between two
// global ranks.
func (w *World) hopExtra(a, b int) float64 {
	if w.cfg.Topology == nil {
		return 0
	}
	na, nb := a/w.cfg.RanksPerNode, b/w.cfg.RanksPerNode
	if na == nb {
		return 0
	}
	hops := w.cfg.Topology(na, nb)
	if hops <= 1 {
		return 0
	}
	return w.cfg.Fabric.HopLatency.Times(float64(hops - 1)).Raw()
}

// collectiveFabric returns the transport for a collective over the
// given global ranks: inter-node if any pair crosses nodes.
func (w *World) collectiveFabric(ranks []int) *simnet.Fabric {
	if len(ranks) == 0 {
		return w.cfg.Intra
	}
	node0 := ranks[0] / w.cfg.RanksPerNode
	for _, r := range ranks[1:] {
		if r/w.cfg.RanksPerNode != node0 {
			return w.cfg.Fabric
		}
	}
	return w.cfg.Intra
}

// Result reports the outcome of a Run.
type Result struct {
	// Times[r] is rank r's final virtual clock in seconds.
	Times []float64
	// Breakdowns[r] is rank r's spend breakdown.
	Breakdowns []vtime.Breakdown
	// Comm profiles the communication (messages, bytes, collectives).
	Comm CommStats
	// Traces holds one event log per rank when tracing was enabled.
	Traces []*trace.Log
}

// MaxTime returns the job's virtual makespan.
func (r *Result) MaxTime() float64 {
	var m float64
	for _, t := range r.Times {
		if t > m {
			m = t
		}
	}
	return m
}

// Series returns the per-rank times as a vtime.Series.
func (r *Result) Series() *vtime.Series {
	s := vtime.NewSeries("rank time")
	for _, t := range r.Times {
		s.Add(t)
	}
	return s
}

// Breakdown returns the breakdown of the slowest rank (the one that
// determines the makespan).
func (r *Result) Breakdown() vtime.Breakdown {
	var best vtime.Breakdown
	var m float64 = -1
	for i, t := range r.Times {
		if t > m {
			m = t
			best = r.Breakdowns[i]
		}
	}
	return best
}

// Run executes body on every rank of a fresh world and waits for all of
// them. The first non-nil error (or recovered panic) is returned; all
// ranks always run to completion or failure so goroutines never leak.
func Run(cfg Config, body func(*Comm) error) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("mpi: need at least one rank, got %d", cfg.Ranks)
	}
	w := &World{
		cfg:     cfg,
		boxes:   make([]*mailbox, cfg.Ranks),
		clocks:  make([]*vtime.Clock, cfg.Ranks),
		phaser:  map[string]*phaser{},
		stats:   newStatCounters(),
		rec:     cfg.Recorder,
		cost:    cfg.Cost,
		inj:     cfg.Fault,
		blocked: make([]atomic.Pointer[BlockedOp], cfg.Ranks),
		abortCh: make(chan struct{}),
	}
	if cfg.TraceCapacity > 0 {
		w.traces = make([]*trace.Log, cfg.Ranks)
		for r := range w.traces {
			w.traces[r] = trace.NewLog(cfg.TraceCapacity)
		}
	}
	group := make([]int, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		w.boxes[r] = newMailbox()
		w.clocks[r] = &vtime.Clock{}
		group[r] = r
	}

	errs := make([]error, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			c := &Comm{world: w, id: "world", rank: rank, group: group}
			errs[rank] = body(c)
		}(r)
	}
	wg.Wait()

	res := &Result{
		Times:      make([]float64, cfg.Ranks),
		Breakdowns: make([]vtime.Breakdown, cfg.Ranks),
		Comm:       w.stats.snapshot(),
		Traces:     w.traces,
	}
	for r := 0; r < cfg.Ranks; r++ {
		res.Times[r] = w.clocks[r].Now()
		res.Breakdowns[r] = w.clocks[r].Breakdown()
	}
	// Prefer the root cause over the secondary AbortErrors the other
	// ranks observe after a crash or deadlock abort.
	var firstAbort error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var ae *AbortError
		if errors.As(err, &ae) {
			if firstAbort == nil {
				firstAbort = err
			}
			continue
		}
		return res, err
	}
	if firstAbort != nil {
		return res, firstAbort
	}
	return res, nil
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	world *World
	id    string // communicator identity, shared by all members
	rank  int    // rank within this communicator
	group []int  // global rank of each communicator rank
}

// Rank returns the caller's rank in this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.group) }

// Clock returns the caller's virtual clock.
func (c *Comm) Clock() *vtime.Clock { return c.world.clocks[c.global(c.rank)] }

// Advance moves the caller's clock forward; miniapps use it to charge
// modelled compute time.
func (c *Comm) Advance(d float64, cat vtime.Category) { c.Clock().Advance(d, cat) }

// Trace records a timeline event on the caller's track (no-op when
// tracing is off). Start and end are virtual times.
func (c *Comm) Trace(name, cat string, start, end float64) {
	c.traceFlow(name, cat, start, end, 0, trace.FlowNone)
}

// traceFlow is Trace with a flow-arrow endpoint attached.
func (c *Comm) traceFlow(name, cat string, start, end float64, flow uint64, kind trace.FlowPhase) {
	g := c.global(c.rank)
	if c.world.traces == nil || c.world.traces[g] == nil {
		return
	}
	c.world.traces[g].Add(trace.Event{
		Name: name, Cat: cat, Rank: g,
		Start: start, End: end,
		Flow: flow, FlowKind: kind,
	})
}

// global translates a communicator rank to a global rank.
func (c *Comm) global(r int) int { return c.group[r] }

func (c *Comm) checkPeer(r int) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", r, len(c.group))
	}
	return nil
}

func float64Bytes(n int) int64 { return int64(n) * 8 }

// post finalizes and delivers a point-to-point message: it charges the
// sender's overhead, stamps the flow id and availability time, counts
// the send, traces the send slice (the FlowOut end of the message
// arrow) and records the operation span.
func (c *Comm) post(dst int, m *message) {
	gsrc, gdst := c.global(c.rank), c.global(dst)
	f := c.world.fabricFor(gsrc, gdst)
	clk := c.Clock()
	t0 := clk.Now()
	clk.Advance(f.SendOverhead(), vtime.Comm)
	m.flow = c.world.msgID.Add(1)
	// Link faults scale the transfer term only (the overhead and hop
	// latency model the endpoints, not the degraded link).
	transfer := f.PointToPoint(m.bytes) * c.world.pairScale(gsrc, gdst) * c.world.linkScale(gsrc, gdst, clk.Now())
	m.avail = clk.Now() + transfer + c.world.hopExtra(gsrc, gdst)
	c.world.stats.countSend(m.bytes)
	c.traceFlow("send", "mpi", t0, clk.Now(), m.flow, trace.FlowOut)
	c.world.rec.MPIOp(gsrc, "send", gdst, m.bytes, clk.Now()-t0)
	c.world.boxes[gdst].post(m)
}

// Send delivers a copy of data to dst with the given tag. It is eager:
// the sender only pays the send overhead and continues. Sending to
// ProcNull is a free no-op.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if dst == ProcNull {
		return nil
	}
	if err := c.checkPeer(dst); err != nil {
		return err
	}
	if err := c.FaultCheck(); err != nil {
		return err
	}
	c.post(dst, &message{
		src:   c.rank,
		tag:   tag,
		data:  append([]float64(nil), data...),
		bytes: float64Bytes(len(data)),
	})
	return nil
}

// SendBytes is Send for raw byte payloads.
func (c *Comm) SendBytes(dst, tag int, data []byte) error {
	if dst == ProcNull {
		return nil
	}
	if err := c.checkPeer(dst); err != nil {
		return err
	}
	if err := c.FaultCheck(); err != nil {
		return err
	}
	c.post(dst, &message{
		src:   c.rank,
		tag:   tag,
		raw:   append([]byte(nil), data...),
		bytes: int64(len(data)),
	})
	return nil
}

// recvMessage blocks until a matching message arrives, advancing the
// caller's clock to the payload availability time. Receiving from
// ProcNull returns an empty message immediately.
func (c *Comm) recvMessage(src, tag int) (*message, error) {
	if src == ProcNull {
		return &message{src: ProcNull, tag: tag}, nil
	}
	if src != AnySource {
		if err := c.checkPeer(src); err != nil {
			return nil, err
		}
	}
	if err := c.FaultCheck(); err != nil {
		return nil, err
	}
	g := c.global(c.rank)
	box := c.world.boxes[g]
	deadline := time.NewTimer(c.world.cfg.Timeout)
	defer deadline.Stop()
	t0 := c.Clock().Now()
	peer := AnySource
	if src != AnySource {
		peer = c.global(src)
	}
	for {
		m, wait := box.take(src, tag)
		if m != nil {
			c.world.clearBlocked(g)
			vs := c.world.cost.Begin()
			c.Clock().AdvanceTo(m.avail, vtime.Comm)
			c.world.cost.End(obs.StageVtimeAdvance, vs)
			end := c.Clock().Now()
			c.traceFlow("recv", "mpi", t0, end, m.flow, trace.FlowIn)
			c.world.rec.MPIOp(g, "recv", c.global(m.src), m.bytes, end-t0)
			return m, nil
		}
		c.world.setBlocked(g, BlockedOp{Rank: g, Op: "recv", Peer: peer, Tag: tag, Clock: t0})
		select {
		case <-wait:
		case <-c.world.abortCh:
			// Leave the blocked entry in place: the rank dies here, and
			// the deadlock dump should still show where it hung.
			return nil, c.world.abortedError()
		case <-deadline.C:
			return nil, c.world.deadlock(g)
		}
	}
}

// Recv blocks until a float64 message matching (src, tag) arrives.
// Use AnySource and AnyTag as wildcards. Receiving a byte message with
// Recv is a type error.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	m, err := c.recvMessage(src, tag)
	if err != nil {
		return nil, err
	}
	if m.raw != nil {
		return nil, fmt.Errorf("mpi: rank %d: Recv matched a byte message (src=%d tag=%d); use RecvBytes", c.rank, m.src, m.tag)
	}
	return m.data, nil
}

// RecvBytes blocks until a byte message matching (src, tag) arrives.
func (c *Comm) RecvBytes(src, tag int) ([]byte, error) {
	m, err := c.recvMessage(src, tag)
	if err != nil {
		return nil, err
	}
	if m.raw == nil && m.data != nil {
		return nil, fmt.Errorf("mpi: rank %d: RecvBytes matched a float64 message (src=%d tag=%d); use Recv", c.rank, m.src, m.tag)
	}
	return m.raw, nil
}

// Sendrecv posts a send to dst and then receives from src, the usual
// halo-exchange primitive. The eager send makes the symmetric pattern
// deadlock-free.
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) ([]float64, error) {
	if err := c.Send(dst, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv(src, recvTag)
}
