package mpi

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"fibersim/internal/vtime"
)

// fastCfg returns a config with a short watchdog for misuse tests.
func fastCfg(ranks int) Config {
	return Config{Ranks: ranks, Timeout: 500 * time.Millisecond}
}

func TestRunNeedsRanks(t *testing.T) {
	if _, err := Run(Config{Ranks: 0}, func(*Comm) error { return nil }); err == nil {
		t.Fatal("Run with 0 ranks must fail")
	}
}

func TestRankAndSize(t *testing.T) {
	seen := make([]bool, 4)
	_, err := Run(fastCfg(4), func(c *Comm) error {
		if c.Size() != 4 {
			t.Errorf("Size = %d", c.Size())
		}
		seen[c.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecv(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1, 2, 3})
		}
		got, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			t.Errorf("Recv got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 0 // mutate after send; receiver must still see 42
			return nil
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("Send did not copy: got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameTag(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				if err := c.Send(1, 0, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			got, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if got[0] != float64(i) {
				t.Errorf("message %d out of order: got %g", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{1}); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{2})
		}
		// Receive tag 2 first even though tag 1 arrived first.
		got2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		got1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if got2[0] != 2 || got1[0] != 1 {
			t.Errorf("tag selection wrong: %v %v", got1, got2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	_, err := Run(fastCfg(3), func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank(), []float64{float64(c.Rank())})
		}
		sum := 0.0
		for i := 0; i < 2; i++ {
			got, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			sum += got[0]
		}
		if sum != 3 {
			t.Errorf("AnySource sum = %g, want 3", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBytes(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendBytes(1, 0, []byte("ACGT"))
		}
		got, err := c.RecvBytes(0, 0)
		if err != nil {
			return err
		}
		if string(got) != "ACGT" {
			t.Errorf("RecvBytes got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendBytes(1, 0, []byte{1})
		}
		_, err := c.Recv(0, 0)
		if err == nil {
			t.Error("Recv of a byte message should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutOnMissingMessage(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 1 {
			_, err := c.Recv(0, 99)
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestInvalidRankErrors(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			t.Error("Send to invalid rank should error")
		}
		if _, err := c.Recv(-7, 0); err == nil {
			t.Error("Recv from invalid rank should error")
		}
		if _, err := c.Bcast(9, nil); err == nil {
			t.Error("Bcast from invalid root should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic in a rank must surface as error")
	}
}

func TestSendrecvRingDeadlockFree(t *testing.T) {
	const p = 8
	_, err := Run(fastCfg(p), func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() + p - 1) % p
		got, err := c.Sendrecv(right, 0, []float64{float64(c.Rank())}, left, 0)
		if err != nil {
			return err
		}
		if got[0] != float64(left) {
			t.Errorf("rank %d got %g from left, want %d", c.Rank(), got[0], left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	res, err := Run(fastCfg(4), func(c *Comm) error {
		// Rank r computes r seconds, then everyone waits at the barrier.
		c.Advance(float64(c.Rank()), vtime.Compute)
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Times[3]
	for r, tm := range res.Times {
		if math.Abs(tm-want) > 1e-12 {
			t.Errorf("rank %d time %g, want %g", r, tm, want)
		}
	}
	if want < 3 {
		t.Errorf("barrier time %g below slowest rank's 3s", want)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(fastCfg(4), func(c *Comm) error {
		var in []float64
		if c.Rank() == 2 {
			in = []float64{3.14, 2.71}
		}
		got, err := c.Bcast(2, in)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.14 {
			t.Errorf("rank %d Bcast got %v", c.Rank(), got)
		}
		// Mutating the received copy must not affect other ranks.
		got[0] = float64(c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastRootWithoutData(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		_, err := c.Bcast(0, nil) // root passes nil too
		return err
	})
	if err == nil {
		t.Fatal("Bcast with nil root buffer must error")
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	_, err := Run(fastCfg(4), func(c *Comm) error {
		data := []float64{float64(c.Rank()), 1}
		sum, err := c.Reduce(0, OpSum, data)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if sum[0] != 6 || sum[1] != 4 {
				t.Errorf("Reduce got %v", sum)
			}
		} else if sum != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), sum)
		}
		all, err := c.Allreduce(OpMax, []float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		if all[0] != 3 {
			t.Errorf("Allreduce max got %v", all)
		}
		mn, err := c.AllreduceScalar(OpMin, float64(c.Rank()+10))
		if err != nil {
			return err
		}
		if mn != 10 {
			t.Errorf("AllreduceScalar min = %g", mn)
		}
		pr, err := c.AllreduceScalar(OpProd, 2)
		if err != nil {
			return err
		}
		if pr != 16 {
			t.Errorf("AllreduceScalar prod = %g", pr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceLengthMismatch(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		data := make([]float64, c.Rank()+1) // ranks pass different lengths
		_, err := c.Allreduce(OpSum, data)
		return err
	})
	if err == nil {
		t.Fatal("length-mismatched Allreduce must error")
	}
}

func TestMismatchedCollectivesDetected(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Barrier()
		}
		_, err := c.Allreduce(OpSum, []float64{1})
		return err
	})
	if err == nil {
		t.Fatal("mismatched collectives must error")
	}
}

func TestGatherAllgather(t *testing.T) {
	_, err := Run(fastCfg(3), func(c *Comm) error {
		mine := make([]float64, c.Rank()+1) // ragged contributions
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		got, err := c.Gather(1, mine)
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			for r := 0; r < 3; r++ {
				if len(got[r]) != r+1 || (r > 0 && got[r][0] != float64(r)) {
					t.Errorf("Gather[%d] = %v", r, got[r])
				}
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
		all, err := c.Allgather([]float64{float64(c.Rank() * 10)})
		if err != nil {
			return err
		}
		for r := 0; r < 3; r++ {
			if all[r][0] != float64(r*10) {
				t.Errorf("Allgather[%d] = %v", r, all[r])
			}
		}
		// Mutation isolation between ranks.
		all[0][0] = -1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const p = 4
	_, err := Run(fastCfg(p), func(c *Comm) error {
		chunks := make([][]float64, p)
		for j := 0; j < p; j++ {
			chunks[j] = []float64{float64(c.Rank()*100 + j)}
		}
		got, err := c.Alltoall(chunks)
		if err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			want := float64(src*100 + c.Rank())
			if got[src][0] != want {
				t.Errorf("rank %d got[%d] = %v, want %g", c.Rank(), src, got[src], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallWrongChunks(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		_, err := c.Alltoall(make([][]float64, 1))
		return err
	})
	if err == nil {
		t.Fatal("Alltoall with wrong chunk count must error")
	}
}

func TestSplit(t *testing.T) {
	_, err := Run(fastCfg(6), func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// Sum of global ranks within each color.
		sum, err := sub.AllreduceScalar(OpSum, float64(c.Rank()))
		if err != nil {
			return err
		}
		want := 6.0 // 0+2+4
		if c.Rank()%2 == 1 {
			want = 9 // 1+3+5
		}
		if sum != want {
			t.Errorf("rank %d: split sum = %g, want %g", c.Rank(), sum, want)
		}
		// p2p inside the subcommunicator uses sub ranks.
		if sub.Rank() == 0 {
			return sub.Send(1, 0, []float64{sum})
		}
		if sub.Rank() == 1 {
			got, err := sub.Recv(0, 0)
			if err != nil {
				return err
			}
			if got[0] != want {
				t.Errorf("sub p2p got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByKeyReorders(t *testing.T) {
	_, err := Run(fastCfg(3), func(c *Comm) error {
		// Reverse order via key.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		wantRank := 2 - c.Rank()
		if sub.Rank() != wantRank {
			t.Errorf("global %d got sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeP2P(t *testing.T) {
	// One 8 MiB message across nodes: receive completes no earlier than
	// the fabric transfer time.
	cfg := fastCfg(2)
	cfg.RanksPerNode = 1 // force inter-node
	n := 1 << 20         // 1Mi float64 = 8 MiB
	res, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]float64, n))
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	minTransfer := float64(8*n) / 6.8e9 // tofud bandwidth
	if res.Times[1] < minTransfer {
		t.Errorf("receiver time %g below transfer time %g", res.Times[1], minTransfer)
	}
	if res.Times[0] > res.Times[1] {
		t.Errorf("eager sender should finish before receiver: %g vs %g", res.Times[0], res.Times[1])
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	timeFor := func(perNode int) float64 {
		cfg := fastCfg(2)
		cfg.RanksPerNode = perNode
		res, err := Run(cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, make([]float64, 4096))
			}
			_, err := c.Recv(0, 0)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxTime()
	}
	if timeFor(2) >= timeFor(1) {
		t.Error("intra-node message should be faster than inter-node")
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Run(fastCfg(3), func(c *Comm) error {
		c.Advance(float64(c.Rank()+1), vtime.Compute)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTime() != 3 {
		t.Errorf("MaxTime = %g", res.MaxTime())
	}
	if s := res.Series(); s.Len() != 3 || s.Max() != 3 {
		t.Errorf("Series wrong: %d %g", s.Len(), s.Max())
	}
	if b := res.Breakdown(); b.Get(vtime.Compute) != 3 {
		t.Errorf("Breakdown = %v", b)
	}
}

func TestOpString(t *testing.T) {
	for _, o := range []Op{OpSum, OpMax, OpMin, OpProd} {
		if o.String() == "" {
			t.Error("empty op name")
		}
	}
	if Op(9).String() == "" {
		t.Error("unknown op should still print")
	}
}

func TestAllreduceMatchesSerialFoldProperty(t *testing.T) {
	// Property: Allreduce(sum) over p ranks equals the serial sum of the
	// same per-rank vectors, for random vectors.
	f := func(seed uint32) bool {
		p := int(seed%4) + 2
		n := int(seed%7) + 1
		vecs := make([][]float64, p)
		x := float64(seed%1000) / 17.0
		for r := range vecs {
			vecs[r] = make([]float64, n)
			for i := range vecs[r] {
				x = math.Mod(x*1.37+0.71, 13)
				vecs[r][i] = x
			}
		}
		want := make([]float64, n)
		for _, v := range vecs {
			for i, e := range v {
				want[i] += e
			}
		}
		ok := true
		_, err := Run(fastCfg(p), func(c *Comm) error {
			got, err := c.Allreduce(OpSum, vecs[c.Rank()])
			if err != nil {
				return err
			}
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCollectiveAdvancesAllClocksEqually(t *testing.T) {
	res, err := Run(fastCfg(4), func(c *Comm) error {
		c.Advance(float64(4-c.Rank()), vtime.Compute)
		_, err := c.Allreduce(OpSum, []float64{1})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if math.Abs(res.Times[r]-res.Times[0]) > 1e-12 {
			t.Errorf("clocks diverge after collective: %v", res.Times)
		}
	}
}

func TestScatter(t *testing.T) {
	const p = 4
	_, err := Run(fastCfg(p), func(c *Comm) error {
		var chunks [][]float64
		if c.Rank() == 2 {
			chunks = make([][]float64, p)
			for i := range chunks {
				chunks[i] = []float64{float64(i * 10)}
			}
		}
		got, err := c.Scatter(2, chunks)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != float64(c.Rank()*10) {
			t.Errorf("rank %d scatter got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongChunks(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		var chunks [][]float64
		if c.Rank() == 0 {
			chunks = make([][]float64, 1) // wrong count
		}
		_, err := c.Scatter(0, chunks)
		return err
	})
	if err == nil {
		t.Fatal("scatter with wrong chunk count must error")
	}
}

func TestReduceScatter(t *testing.T) {
	const p = 4
	_, err := Run(fastCfg(p), func(c *Comm) error {
		data := make([]float64, p*2)
		for i := range data {
			data[i] = float64(i)
		}
		got, err := c.ReduceScatter(OpSum, data)
		if err != nil {
			return err
		}
		// Sum over p ranks of identical vectors: element i -> p*i.
		if len(got) != 2 {
			t.Fatalf("chunk size %d", len(got))
		}
		for j, v := range got {
			want := float64(p * (c.Rank()*2 + j))
			if v != want {
				t.Errorf("rank %d got[%d] = %g, want %g", c.Rank(), j, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterIndivisible(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		_, err := c.ReduceScatter(OpSum, make([]float64, 3))
		return err
	})
	if err == nil {
		t.Fatal("indivisible reduce-scatter must error")
	}
}

func TestCommStats(t *testing.T) {
	res, err := Run(fastCfg(4), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []float64{1, 2}); err != nil {
				return err
			}
		}
		if c.Rank() == 1 {
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		_, err := c.Allreduce(OpSum, []float64{1})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Sends != 1 || res.Comm.SendBytes != 16 {
		t.Errorf("sends=%d bytes=%d, want 1/16", res.Comm.Sends, res.Comm.SendBytes)
	}
	if res.Comm.Collectives["barrier"] != 4 || res.Comm.Collectives["allreduce"] != 4 {
		t.Errorf("collectives = %v", res.Comm.Collectives)
	}
	s := res.Comm.String()
	for _, want := range []string{"sends=1", "barrier=4", "allreduce=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestTracing(t *testing.T) {
	cfg := fastCfg(2)
	cfg.TraceCapacity = 64
	res, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []float64{1}); err != nil {
				return err
			}
		} else if _, err := c.Recv(0, 0); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("want 2 trace logs, got %d", len(res.Traces))
	}
	names := map[string]bool{}
	for _, l := range res.Traces {
		for _, ev := range l.Events() {
			names[ev.Name] = true
			if ev.End < ev.Start {
				t.Errorf("event %q backwards", ev.Name)
			}
		}
	}
	if !names["recv"] || !names["barrier"] {
		t.Errorf("missing expected events: %v", names)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	res, err := Run(fastCfg(2), func(c *Comm) error {
		c.Trace("x", "kernel", 0, 1) // must be a harmless no-op
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != nil {
		t.Error("traces should be nil when disabled")
	}
}

func TestProcNull(t *testing.T) {
	// Non-periodic halo exchange: boundary ranks talk to ProcNull and
	// the pattern stays uniform.
	const p = 4
	res, err := Run(fastCfg(p), func(c *Comm) error {
		up, down := c.Rank()+1, c.Rank()-1
		if up >= p {
			up = ProcNull
		}
		if down < 0 {
			down = ProcNull
		}
		got, err := c.Sendrecv(up, 3, []float64{float64(c.Rank())}, down, 3)
		if err != nil {
			return err
		}
		if down == ProcNull {
			if got != nil {
				t.Errorf("rank %d: ProcNull recv returned %v", c.Rank(), got)
			}
		} else if got[0] != float64(down) {
			t.Errorf("rank %d got %v from %d", c.Rank(), got, down)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ProcNull traffic is free: only the p-1 real messages counted.
	if res.Comm.Sends != p-1 {
		t.Errorf("sends = %d, want %d", res.Comm.Sends, p-1)
	}
}
