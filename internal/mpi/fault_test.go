package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"fibersim/internal/fault"
)

// deadlockCfg uses a millisecond-scale watchdog so a deliberately hung
// pair fails fast instead of after the 30 s default.
func deadlockCfg(ranks int) Config {
	return Config{Ranks: ranks, Timeout: 50 * time.Millisecond}
}

func TestDeadlockErrorDumpsBothRanks(t *testing.T) {
	// Classic head-to-head deadlock: both ranks Recv first, nobody sends.
	_, err := Run(deadlockCfg(2), func(c *Comm) error {
		_, err := c.Recv(1-c.Rank(), 7)
		return err
	})
	if err == nil {
		t.Fatal("deadlocked pair returned nil")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadlock error does not unwrap to ErrTimeout: %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("dump has %d blocked ops, want 2: %v", len(de.Blocked), de)
	}
	seen := map[int]BlockedOp{}
	for _, b := range de.Blocked {
		seen[b.Rank] = b
	}
	for rank, wantPeer := range map[int]int{0: 1, 1: 0} {
		b, ok := seen[rank]
		if !ok {
			t.Fatalf("rank %d missing from dump: %v", rank, de)
		}
		if b.Op != "recv" || b.Peer != wantPeer || b.Tag != 7 {
			t.Errorf("rank %d blocked op = %+v, want recv peer=%d tag=7", rank, b, wantPeer)
		}
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "rank 0: recv peer=1 tag=7", "rank 1: recv peer=0 tag=7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error text missing %q:\n%s", want, msg)
		}
	}
}

func TestDeadlockReleasesOtherBlockedRanks(t *testing.T) {
	// Three ranks hang in different ops; the first watchdog to fire must
	// abort the world so the others return promptly with AbortError
	// instead of each waiting out its own watchdog.
	start := time.Now()
	_, err := Run(deadlockCfg(3), func(c *Comm) error {
		if c.Rank() == 2 {
			return c.Barrier() // nobody else joins
		}
		_, err := c.Recv(1-c.Rank(), 9)
		return err
	})
	if err == nil {
		t.Fatal("hung world returned nil")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 3 {
		t.Fatalf("dump has %d blocked ops, want 3: %v", len(de.Blocked), de)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("world took %v to unwind; abort should release everyone at the first watchdog", elapsed)
	}
}

func TestCollectiveDeadlockNamesOperation(t *testing.T) {
	_, err := Run(deadlockCfg(2), func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // skips the collective
		}
		_, err := c.AllreduceScalar(OpSum, 1)
		return err
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 || !strings.HasPrefix(de.Blocked[0].Op, "allreduce") {
		t.Fatalf("dump = %v, want rank 0 blocked in allreduce", de)
	}
}

func TestScheduledCrashAbortsWorld(t *testing.T) {
	inj, err := fault.NewInjector(&fault.Schedule{
		Crashes: []fault.Crash{{Rank: 1, Time: 1e-6}},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(4)
	cfg.Fault = inj
	start := time.Now()
	_, err = Run(cfg, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			c.Advance(1e-6, 0)
			if _, err := c.AllreduceScalar(OpSum, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("crashed world returned nil")
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError as root cause, got %v", err)
	}
	if ce.Rank != 1 {
		t.Fatalf("crashed rank = %d, want 1", ce.Rank)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("crash took %v to unwind; the abort must release blocked partners, not hang", elapsed)
	}
	if got := inj.Counters().Crashes; got != 1 {
		t.Fatalf("injector counted %d crashes, want 1", got)
	}
}

func TestCrashedRankPartnersSeeAbort(t *testing.T) {
	inj, err := fault.NewInjector(&fault.Schedule{
		Crashes: []fault.Crash{{Rank: 0, Time: 0}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(2)
	cfg.Fault = inj
	errs := make([]error, 2)
	_, _ = Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			// Crash fires at the first MPI operation (clock 0 >= 0).
			errs[0] = c.Send(1, 1, []float64{1})
			return errs[0]
		}
		_, errs[1] = c.Recv(0, 1)
		return errs[1]
	})
	var ce *CrashError
	if !errors.As(errs[0], &ce) {
		t.Fatalf("crashed rank error = %v, want *CrashError", errs[0])
	}
	if !errors.Is(errs[1], ErrAborted) {
		t.Fatalf("survivor error = %v, want ErrAborted", errs[1])
	}
	if !errors.As(errs[1], &ce) {
		t.Fatalf("survivor error %v does not expose the CrashError cause", errs[1])
	}
}

func TestLinkFaultSlowsCrossNodeMessages(t *testing.T) {
	run := func(inj *fault.Injector) float64 {
		cfg := fastCfg(2)
		cfg.RanksPerNode = 1 // rank r on node r
		cfg.Fault = inj
		res, err := Run(cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 1, make([]float64, 4096))
			}
			_, err := c.Recv(0, 1)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxTime()
	}
	clean := run(nil)
	inj, err := fault.NewInjector(&fault.Schedule{
		Links: []fault.LinkFault{{NodeA: 0, NodeB: 1, Start: 0, End: 1e9, Factor: 10}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	degraded := run(inj)
	if degraded <= clean {
		t.Fatalf("degraded link makespan %g not above clean %g", degraded, clean)
	}
	if c := inj.Counters(); c.DegradedSends != 1 {
		t.Fatalf("DegradedSends = %d, want 1", c.DegradedSends)
	}
}

func TestFaultCheckNilInjectorIsFree(t *testing.T) {
	_, err := Run(fastCfg(2), func(c *Comm) error {
		if err := c.FaultCheck(); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
