package mpi

import "fmt"

// Request is a handle on a nonblocking operation; Wait completes it.
type Request struct {
	c        *Comm
	done     bool
	isRecv   bool
	src, tag int
	data     []float64
	err      error
}

// Isend posts a nonblocking send. The runtime's sends are eager, so
// the operation is already complete when Isend returns; the Request
// exists for MPI-shaped code and for symmetry with Irecv.
func (c *Comm) Isend(dst, tag int, data []float64) (*Request, error) {
	if err := c.Send(dst, tag, data); err != nil {
		return nil, err
	}
	return &Request{c: c, done: true}, nil
}

// Irecv posts a nonblocking receive. Matching happens at Wait; posting
// is free, which preserves the usual post-early/complete-late pattern
// without a background matcher.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if src != AnySource {
		if err := c.checkPeer(src); err != nil {
			return nil, err
		}
	}
	return &Request{c: c, isRecv: true, src: src, tag: tag}, nil
}

// Wait completes the request, returning received data for Irecv (nil
// for sends). Waiting twice returns the original outcome.
func (r *Request) Wait() ([]float64, error) {
	if r.done {
		return r.data, r.err
	}
	r.done = true
	if !r.isRecv {
		return nil, nil
	}
	r.data, r.err = r.c.Recv(r.src, r.tag)
	return r.data, r.err
}

// WaitAll completes every request, returning the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for i, r := range reqs {
		if r == nil {
			if first == nil {
				first = fmt.Errorf("mpi: WaitAll got nil request %d", i)
			}
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
