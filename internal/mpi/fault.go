package mpi

import (
	"errors"
	"fmt"
	"time"

	"fibersim/internal/fault"
)

// BlockedOp is one rank's in-flight blocking operation, captured for
// the deadlock dump: what it is waiting in, on whom, and where its
// virtual clock stood when it blocked.
type BlockedOp struct {
	// Rank is the global rank.
	Rank int
	// Op names the operation ("recv", "allreduce/...", ...).
	Op string
	// Peer is the awaited global rank; -1 for collectives/AnySource.
	Peer int
	// Tag is the awaited tag; -1 for collectives/AnyTag.
	Tag int
	// Clock is the rank's virtual time when it blocked (s).
	Clock float64
}

func (b BlockedOp) String() string {
	switch {
	case b.Peer < 0 && b.Tag < 0:
		return fmt.Sprintf("rank %d: %s clock=%.9gs", b.Rank, b.Op, b.Clock)
	default:
		return fmt.Sprintf("rank %d: %s peer=%d tag=%d clock=%.9gs", b.Rank, b.Op, b.Peer, b.Tag, b.Clock)
	}
}

// DeadlockError is the structured replacement for a bare watchdog
// timeout: it names the rank whose watchdog fired and dumps every
// rank's blocked operation at that moment, so a hung exchange is
// diagnosable from the error alone. It unwraps to ErrTimeout for
// backward-compatible errors.Is checks.
type DeadlockError struct {
	// Timeout is the watchdog that expired.
	Timeout time.Duration
	// Rank is the global rank whose watchdog fired first.
	Rank int
	// Blocked lists every rank blocked at expiry, ordered by rank;
	// ranks still computing (not blocked in MPI) are absent.
	Blocked []BlockedOp
}

func (e *DeadlockError) Error() string {
	s := fmt.Sprintf("mpi: deadlock: watchdog %v expired on rank %d; %d blocked rank(s):",
		e.Timeout, e.Rank, len(e.Blocked))
	for _, b := range e.Blocked {
		s += "\n  " + b.String()
	}
	return s
}

// Unwrap keeps errors.Is(err, ErrTimeout) working on the structured error.
func (e *DeadlockError) Unwrap() error { return ErrTimeout }

// ErrAborted marks errors caused by a world-wide abort; every rank
// blocked at abort time unwraps to it.
var ErrAborted = errors.New("mpi: world aborted")

// CrashError reports a rank killed by a fault-schedule crash event.
type CrashError struct {
	// Rank is the global rank that died.
	Rank int
	// Time is the scheduled virtual time of death (s).
	Time float64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("mpi: rank %d crashed at t=%.9gs (fault schedule)", e.Rank, e.Time)
}

// AbortError is what the surviving ranks observe after a world-wide
// abort: it wraps the root cause (a CrashError, a DeadlockError, ...)
// so errors.Is/As reach both ErrAborted and the cause.
type AbortError struct {
	// Cause is the error that triggered the abort.
	Cause error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("mpi: world aborted: %v", e.Cause)
}

// Unwrap exposes both the abort marker and the root cause.
func (e *AbortError) Unwrap() []error { return []error{ErrAborted, e.Cause} }

// abort terminates the world once: the first caller wins, every rank
// blocked in an MPI operation is released with an AbortError, and
// later FaultCheck calls fail fast.
func (w *World) abort(cause error) {
	w.abortOnce.Do(func() {
		w.abortErr = cause
		close(w.abortCh)
	})
}

// abortedError returns the AbortError for a world known to be aborted.
// Safe only after abortCh is closed (the close happens-before any read
// of abortErr through the channel).
func (w *World) abortedError() error {
	return &AbortError{Cause: w.abortErr}
}

// setBlocked publishes rank's blocked operation for deadlock dumps.
func (w *World) setBlocked(rank int, b BlockedOp) {
	w.blocked[rank].Store(&b)
}

// clearBlocked removes rank's blocked-operation record.
func (w *World) clearBlocked(rank int) {
	w.blocked[rank].Store(nil)
}

// deadlock builds the rank dump, aborts the world with it (releasing
// the other blocked ranks) and returns the error.
func (w *World) deadlock(rank int) error {
	e := &DeadlockError{Timeout: w.cfg.Timeout, Rank: rank}
	for r := range w.blocked {
		if b := w.blocked[r].Load(); b != nil {
			e.Blocked = append(e.Blocked, *b)
		}
	}
	w.abort(e)
	return e
}

// FaultCheck is the per-rank fault checkpoint: it fires a scheduled
// crash once the rank's virtual clock reaches its time of death
// (aborting the whole world so no partner hangs), and fails fast when
// the world was already aborted by another rank. The runtime calls it
// at the entry of every MPI operation; the miniapp launcher calls it
// after every modelled kernel charge. Returns nil on a healthy world.
func (c *Comm) FaultCheck() error {
	w := c.world
	g := c.global(c.rank)
	if at, ok := w.inj.CrashTime(g); ok && c.Clock().Now() >= at {
		w.inj.RecordCrash(g)
		err := &CrashError{Rank: g, Time: at}
		w.abort(err)
		return err
	}
	select {
	case <-w.abortCh:
		return w.abortedError()
	default:
		return nil
	}
}

// linkScale returns the fault-schedule cost multiplier for a message
// between two global ranks, mapped to their simulated nodes.
func (w *World) linkScale(a, b int, at float64) float64 {
	if w.inj == nil {
		return 1
	}
	return w.inj.LinkScale(a/w.cfg.RanksPerNode, b/w.cfg.RanksPerNode, at)
}

// Injector returns the world's fault injector (nil on clean runs).
func (c *Comm) Injector() *fault.Injector { return c.world.inj }
