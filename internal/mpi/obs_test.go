package mpi

import (
	"testing"

	"fibersim/internal/obs"
	"fibersim/internal/trace"
)

func TestCollectiveBytes(t *testing.T) {
	res, err := Run(fastCfg(4), func(c *Comm) error {
		if _, err := c.Allreduce(OpSum, []float64{1, 2}); err != nil {
			return err
		}
		var buf []float64
		if c.Rank() == 0 {
			buf = []float64{1, 2, 3}
		}
		if _, err := c.Bcast(0, buf); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each of 4 ranks contributes its 2-element payload to allreduce.
	if got := res.Comm.CollectiveBytes["allreduce"]; got != 4*16 {
		t.Errorf("allreduce bytes = %d, want 64", got)
	}
	// Only the root carries a bcast payload, counted once.
	if got := res.Comm.CollectiveBytes["bcast"]; got != 24 {
		t.Errorf("bcast bytes = %d, want 24", got)
	}
	if got := res.Comm.CollectiveBytes["barrier"]; got != 0 {
		t.Errorf("barrier bytes = %d, want 0", got)
	}
}

func TestMergeCommStats(t *testing.T) {
	a := CommStats{
		Sends: 2, SendBytes: 100,
		Collectives:     map[string]int64{"barrier": 4},
		CollectiveBytes: map[string]int64{"allreduce": 32},
	}
	b := CommStats{
		Sends: 3, SendBytes: 50,
		Collectives:     map[string]int64{"barrier": 2, "allreduce": 4},
		CollectiveBytes: map[string]int64{"allreduce": 16},
	}
	got := MergeCommStats(a, b)
	if got.Sends != 5 || got.SendBytes != 150 {
		t.Errorf("sends/bytes = %d/%d, want 5/150", got.Sends, got.SendBytes)
	}
	if got.Collectives["barrier"] != 6 || got.Collectives["allreduce"] != 4 {
		t.Errorf("collectives = %v", got.Collectives)
	}
	if got.CollectiveBytes["allreduce"] != 48 {
		t.Errorf("collective bytes = %v", got.CollectiveBytes)
	}
	if MergeCommStats().Collectives == nil {
		t.Error("empty merge must still allocate maps")
	}
}

func TestRecorderIntegration(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := fastCfg(2)
	cfg.Recorder = rec
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []float64{1, 2}); err != nil {
				return err
			}
		}
		if c.Rank() == 1 {
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		_, err := c.Allreduce(OpSum, []float64{1})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rec.Profile()
	send := p.Comm.Ops["send"]
	if send.Count != 1 || send.Bytes != 16 {
		t.Errorf("send op = %+v, want count 1 bytes 16", send)
	}
	recv := p.Comm.Ops["recv"]
	if recv.Count != 1 || recv.Bytes != 16 || recv.WaitSeconds <= 0 {
		t.Errorf("recv op = %+v, want count 1 bytes 16 wait > 0", recv)
	}
	ar := p.Comm.Ops["allreduce"]
	if ar.Count != 2 || ar.Bytes != 16 {
		t.Errorf("allreduce op = %+v, want count 2 bytes 16", ar)
	}
	// The message appears once in the peer matrix (send side only).
	if len(p.Comm.Peers) != 1 {
		t.Fatalf("peers = %+v, want exactly one flow", p.Comm.Peers)
	}
	if f := p.Comm.Peers[0]; f.Src != 0 || f.Dst != 1 || f.Count != 1 || f.Bytes != 16 {
		t.Errorf("peer flow = %+v", f)
	}
	if p.Comm.WaitSeconds <= 0 {
		t.Error("total wait must be positive")
	}
}

func TestTraceFlowEvents(t *testing.T) {
	cfg := fastCfg(2)
	cfg.TraceCapacity = 64
	res, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []float64{1})
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var out, in trace.Event
	for _, l := range res.Traces {
		for _, ev := range l.Events() {
			switch ev.FlowKind {
			case trace.FlowOut:
				out = ev
			case trace.FlowIn:
				in = ev
			}
		}
	}
	if out.Flow == 0 || in.Flow == 0 {
		t.Fatalf("missing flow endpoints: out=%+v in=%+v", out, in)
	}
	if out.Flow != in.Flow {
		t.Errorf("flow ids differ: send %d, recv %d", out.Flow, in.Flow)
	}
	if out.Name != "send" || in.Name != "recv" {
		t.Errorf("flow slice names = %q/%q", out.Name, in.Name)
	}
	if out.Rank != 0 || in.Rank != 1 {
		t.Errorf("flow ranks = %d/%d", out.Rank, in.Rank)
	}
}
