// Package trace records virtual-time event timelines of simulated
// runs and exports them in the Chrome Trace Event format, so a run can
// be inspected in chrome://tracing or Perfetto: one named track per
// MPI rank, one slice per kernel charge, message or collective, flow
// arrows linking sends to their receives, and a counter track for
// events dropped at capacity.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// FlowPhase marks an event as one end of a message flow arrow.
type FlowPhase int

const (
	// FlowNone is an ordinary slice.
	FlowNone FlowPhase = iota
	// FlowOut marks the producing end (a send slice).
	FlowOut
	// FlowIn marks the consuming end (the matching recv slice).
	FlowIn
)

// Event is one timeline slice on a rank's track, in virtual seconds.
type Event struct {
	// Name labels the slice ("wilson-clover-dslash", "allreduce", ...).
	Name string
	// Cat groups slices ("kernel", "mpi").
	Cat string
	// Rank is the track.
	Rank int
	// Start and End are virtual times in seconds.
	Start, End float64
	// Flow, when non-zero, is the message id linking a send slice to
	// its receive slice; FlowKind says which end this slice is.
	Flow     uint64
	FlowKind FlowPhase
}

// Log collects events for one rank. A Log is safe for use by its
// owning rank only; cross-rank aggregation happens after the run.
type Log struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped int64
}

// NewLog returns a log that keeps at most capacity events and counts
// the overflow.
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{cap: capacity}
}

// Add appends an event, dropping it if the log is full.
func (l *Log) Add(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) >= l.cap {
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Dropped returns how many events overflowed the capacity.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// chromeEvent is the Trace Event Format event. Ph "X" is a complete
// slice; "M" metadata, "s"/"f" flow endpoints, "C" a counter sample.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds, X only
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"` // flow binding
	BP   string         `json:"bp,omitempty"` // "e": bind flow to enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome merges the logs (one per rank) into a Chrome Trace Event
// JSON document: named rank tracks (process_name/thread_name
// metadata), the event slices, s/f flow arrows linking send slices to
// their matching recv slices, and a "dropped events" counter per rank
// when the log overflowed.
func WriteChrome(w io.Writer, logs ...*Log) error {
	var all []chromeEvent
	var meta []chromeEvent
	var maxTs float64
	ranks := map[int]bool{}

	meta = append(meta, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "fibersim"},
	})

	flowSeen := map[uint64][2]bool{} // id -> {out seen, in seen}
	flowIDs := map[string]uint64{}   // rendered id -> raw id, for pruning
	for _, l := range logs {
		if l == nil {
			continue
		}
		for _, ev := range l.Events() {
			if ev.End < ev.Start {
				return fmt.Errorf("trace: event %q on rank %d ends before it starts", ev.Name, ev.Rank)
			}
			ranks[ev.Rank] = true
			ce := chromeEvent{
				Name: ev.Name,
				Cat:  ev.Cat,
				Ph:   "X",
				Ts:   ev.Start * 1e6,
				Dur:  (ev.End - ev.Start) * 1e6,
				Pid:  0,
				Tid:  ev.Rank,
			}
			all = append(all, ce)
			if end := ev.End * 1e6; end > maxTs {
				maxTs = end
			}
			if ev.Flow != 0 && ev.FlowKind != FlowNone {
				fe := chromeEvent{
					Name: "msg", Cat: "msg", Pid: 0, Tid: ev.Rank,
					ID: fmt.Sprintf("0x%x", ev.Flow),
				}
				flowIDs[fe.ID] = ev.Flow
				seen := flowSeen[ev.Flow]
				switch ev.FlowKind {
				case FlowOut:
					fe.Ph, fe.Ts = "s", ev.Start*1e6
					seen[0] = true
				case FlowIn:
					// Bind to the end of the enclosing recv slice, where
					// the payload became available.
					fe.Ph, fe.Ts, fe.BP = "f", ev.End*1e6, "e"
					seen[1] = true
				}
				flowSeen[ev.Flow] = seen
				all = append(all, fe)
			}
		}
	}

	// Drop half-open arrows (send traced, recv dropped at capacity or
	// vice versa): Perfetto renders dangling flow ends confusingly.
	complete := all[:0]
	for _, ce := range all {
		if ce.Ph == "s" || ce.Ph == "f" {
			if seen := flowSeen[flowIDs[ce.ID]]; !seen[0] || !seen[1] {
				continue
			}
		}
		complete = append(complete, ce)
	}
	all = complete

	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)
	for _, r := range rankList {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}

	// One counter sample per rank at the end of the timeline so the
	// dropped-event total shows as its own track.
	for i, l := range logs {
		if l == nil {
			continue
		}
		if d := l.Dropped(); d > 0 {
			all = append(all, chromeEvent{
				Name: "dropped events", Ph: "C", Ts: maxTs, Pid: 0, Tid: i,
				Args: map[string]any{"dropped": d},
			})
		}
	}

	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Tid != all[j].Tid {
			return all[i].Tid < all[j].Tid
		}
		return all[i].Ts < all[j].Ts
	})
	all = append(meta, all...)
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{all})
}
