// Package trace records virtual-time event timelines of simulated
// runs and exports them in the Chrome Trace Event format, so a run can
// be inspected in chrome://tracing or Perfetto: one track per MPI
// rank, one slice per kernel charge, message or collective.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one timeline slice on a rank's track, in virtual seconds.
type Event struct {
	// Name labels the slice ("wilson-clover-dslash", "allreduce", ...).
	Name string
	// Cat groups slices ("kernel", "mpi").
	Cat string
	// Rank is the track.
	Rank int
	// Start and End are virtual times in seconds.
	Start, End float64
}

// Log collects events for one rank. A Log is safe for use by its
// owning rank only; cross-rank aggregation happens after the run.
type Log struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped int64
}

// NewLog returns a log that keeps at most capacity events and counts
// the overflow.
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{cap: capacity}
}

// Add appends an event, dropping it if the log is full.
func (l *Log) Add(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) >= l.cap {
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Dropped returns how many events overflowed the capacity.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// chromeEvent is the Trace Event Format "complete" event.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChrome merges the logs (one per rank) into a Chrome Trace Event
// JSON document.
func WriteChrome(w io.Writer, logs ...*Log) error {
	var all []chromeEvent
	for _, l := range logs {
		if l == nil {
			continue
		}
		for _, ev := range l.Events() {
			if ev.End < ev.Start {
				return fmt.Errorf("trace: event %q on rank %d ends before it starts", ev.Name, ev.Rank)
			}
			all = append(all, chromeEvent{
				Name: ev.Name,
				Cat:  ev.Cat,
				Ph:   "X",
				Ts:   ev.Start * 1e6,
				Dur:  (ev.End - ev.Start) * 1e6,
				Pid:  0,
				Tid:  ev.Rank,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Tid != all[j].Tid {
			return all[i].Tid < all[j].Tid
		}
		return all[i].Ts < all[j].Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{all})
}
