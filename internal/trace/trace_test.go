package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestLogCapacity(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{Name: "x", Start: float64(i), End: float64(i) + 1})
	}
	if len(l.Events()) != 2 {
		t.Errorf("kept %d events, want 2", len(l.Events()))
	}
	if l.Dropped() != 3 {
		t.Errorf("dropped %d, want 3", l.Dropped())
	}
	if NewLog(0) == nil {
		t.Error("degenerate capacity must still construct")
	}
}

// chromeDoc decodes a written trace for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   string         `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeChrome(t *testing.T, buf *bytes.Buffer) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestWriteChrome(t *testing.T) {
	l0 := NewLog(10)
	l0.Add(Event{Name: "k1", Cat: "kernel", Rank: 0, Start: 1e-6, End: 3e-6})
	l1 := NewLog(10)
	l1.Add(Event{Name: "allreduce", Cat: "mpi", Rank: 1, Start: 2e-6, End: 5e-6})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, l0, nil, l1); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, &buf)

	var slices, metas int
	threadNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Name == "k1" {
				if ev.Ts != 1 || ev.Tid != 0 {
					t.Errorf("k1 slice wrong: %+v", ev)
				}
				if ev.Dur < 2-1e-9 || ev.Dur > 2+1e-9 {
					t.Errorf("k1 duration %v, want ~2us", ev.Dur)
				}
			}
		case "M":
			metas++
			if ev.Name == "thread_name" {
				threadNames[ev.Tid], _ = ev.Args["name"].(string)
			}
			if ev.Name == "process_name" && ev.Args["name"] != "fibersim" {
				t.Errorf("process_name = %v", ev.Args)
			}
		}
	}
	if slices != 2 {
		t.Errorf("got %d slices, want 2", slices)
	}
	if metas != 3 { // process_name + 2 thread names
		t.Errorf("got %d metadata events, want 3", metas)
	}
	if threadNames[0] != "rank 0" || threadNames[1] != "rank 1" {
		t.Errorf("thread names = %v", threadNames)
	}
}

func TestWriteChromeFlows(t *testing.T) {
	send := NewLog(10)
	send.Add(Event{Name: "send", Cat: "mpi", Rank: 0, Start: 1e-6, End: 2e-6,
		Flow: 42, FlowKind: FlowOut})
	recv := NewLog(10)
	recv.Add(Event{Name: "recv", Cat: "mpi", Rank: 1, Start: 1e-6, End: 4e-6,
		Flow: 42, FlowKind: FlowIn})
	// A half-open flow (its recv was dropped) must be pruned.
	send.Add(Event{Name: "send", Cat: "mpi", Rank: 0, Start: 5e-6, End: 6e-6,
		Flow: 43, FlowKind: FlowOut})

	var buf bytes.Buffer
	if err := WriteChrome(&buf, send, recv); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, &buf)
	var s, f int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			s++
			if ev.ID != "0x2a" || ev.Tid != 0 || ev.Ts != 1 {
				t.Errorf("flow start wrong: %+v", ev)
			}
		case "f":
			f++
			if ev.ID != "0x2a" || ev.Tid != 1 || ev.BP != "e" || ev.Ts != 4 {
				t.Errorf("flow finish wrong: %+v", ev)
			}
		}
	}
	if s != 1 || f != 1 {
		t.Errorf("got %d starts / %d finishes, want 1/1 (half-open pruned)", s, f)
	}
}

// TestWriteChromeDropCounter pins the drop accounting at capacity: the
// overflow count surfaces as a counter track sample.
func TestWriteChromeDropCounter(t *testing.T) {
	l := NewLog(1)
	l.Add(Event{Name: "kept", Cat: "kernel", Rank: 0, Start: 0, End: 1e-6})
	for i := 0; i < 4; i++ {
		l.Add(Event{Name: "lost", Cat: "kernel", Rank: 0, Start: 0, End: 1e-6})
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, l); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, &buf)
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" && ev.Name == "dropped events" {
			found = true
			if v, _ := ev.Args["dropped"].(float64); v != 4 {
				t.Errorf("dropped counter = %v, want 4", ev.Args)
			}
			if ev.Ts != 1 { // at the end of the timeline (us)
				t.Errorf("counter ts = %v", ev.Ts)
			}
		}
	}
	if !found {
		t.Error("no dropped-events counter emitted")
	}
}

func TestWriteChromeRejectsBackwardsEvent(t *testing.T) {
	l := NewLog(4)
	l.Add(Event{Name: "bad", Start: 2, End: 1})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, l); err == nil {
		t.Fatal("backwards event must error")
	}
}
