package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestLogCapacity(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{Name: "x", Start: float64(i), End: float64(i) + 1})
	}
	if len(l.Events()) != 2 {
		t.Errorf("kept %d events, want 2", len(l.Events()))
	}
	if l.Dropped() != 3 {
		t.Errorf("dropped %d, want 3", l.Dropped())
	}
	if NewLog(0) == nil {
		t.Error("degenerate capacity must still construct")
	}
}

func TestWriteChrome(t *testing.T) {
	l0 := NewLog(10)
	l0.Add(Event{Name: "k1", Cat: "kernel", Rank: 0, Start: 1e-6, End: 3e-6})
	l1 := NewLog(10)
	l1.Add(Event{Name: "allreduce", Cat: "mpi", Rank: 1, Start: 2e-6, End: 5e-6})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, l0, nil, l1); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "k1" || ev.Ph != "X" || ev.Ts != 1 || ev.Tid != 0 {
		t.Errorf("event 0 wrong: %+v", ev)
	}
	if ev.Dur < 2-1e-9 || ev.Dur > 2+1e-9 {
		t.Errorf("event 0 duration %v, want ~2us", ev.Dur)
	}
}

func TestWriteChromeRejectsBackwardsEvent(t *testing.T) {
	l := NewLog(4)
	l.Add(Event{Name: "bad", Start: 2, End: 1})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, l); err == nil {
		t.Fatal("backwards event must error")
	}
}
