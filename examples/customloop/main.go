// Customloop shows how a downstream user brings their OWN loop to the
// framework: describe the loop's structure to internal/loopir, let the
// compiler-decision rules derive a kernel descriptor, and ask the
// performance model what the loop would do on each machine and what
// the Fujitsu-style compiler levers would buy.
//
//	go run ./examples/customloop
package main

import (
	"fmt"
	"log"

	"fibersim/internal/arch"
	"fibersim/internal/core"
	"fibersim/internal/loopir"
	"fibersim/internal/vtime"
)

func main() {
	// Example: a sparse SpMV-like loop —
	//   for nz := range rows { y[row[nz]] += a[nz] * x[col[nz]] }
	// one FMA against an indexed gather and an indexed scatter-add.
	loop := loopir.Loop{
		Name: "spmv-csr",
		Ops: []loopir.Op{
			{Kind: loopir.OpFMA, Count: 1},
			{Kind: loopir.OpInt, Count: 2}, // index loads / address math
		},
		Accesses: []loopir.Access{
			{Bytes: 8, Stride: loopir.StrideUnit},                 // a[nz]
			{Bytes: 4, Stride: loopir.StrideUnit},                 // col[nz]
			{Bytes: 8, Stride: loopir.StrideIndexed},              // x[col[nz]]
			{Bytes: 8, Stride: loopir.StrideIndexed, Store: true}, // y[row[nz]] +=
		},
		WorkingSetBytes: 256 << 20, // matrix streams from memory
	}

	kernel, err := loop.Kernel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived kernel %q:\n", kernel.Name)
	fmt.Printf("  flops/iter %.0f  bytes/iter %.0f  AI %.3f  pattern %s\n",
		kernel.FlopsPerIter, kernel.BytesPerIter(), kernel.ArithmeticIntensity(), kernel.Pattern)
	fmt.Printf("  compiler auto-vectorizes %.0f%%; tuned code reaches %.0f%%; dependency penalty %.1f\n\n",
		kernel.AutoVecFrac*100, kernel.VectorizableFrac*100, kernel.DepChainPenalty)

	const iters = 50e6
	for _, name := range []string{"a64fx", "skylake", "thunderx2", "k"} {
		m := arch.MustLookup(name)
		mdl := core.NewModel(m)
		cores := make([]int, m.TotalCores())
		for i := range cores {
			cores[i] = i
		}
		ex := core.Exec{ThreadCores: cores, HomeDomain: -1, Compiler: core.AsIs()}

		asIs, err := mdl.KernelTime(kernel, iters, ex)
		if err != nil {
			log.Fatal(err)
		}
		ex.Compiler = core.Tuned()
		tuned, err := mdl.KernelTime(kernel, iters, ex)
		if err != nil {
			log.Fatal(err)
		}
		ana, err := mdl.Analyze(kernel, iters, core.Exec{
			ThreadCores: cores, HomeDomain: -1, Compiler: core.AsIs(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s as-is %-8s (%6.1f Gflop/s, %s-bound)  tuned %-8s  speedup %.2fx\n",
			name, vtime.Format(asIs.Total), asIs.GFlops(), ana.Bottleneck,
			vtime.Format(tuned.Total), asIs.Total/tuned.Total)
	}
	fmt.Println("\n(the gather-bound SpMV barely vectorizes as-is everywhere; the")
	fmt.Println("A64FX covers the gap with HBM2 bandwidth once tuned)")
}
