// Powerstudy walks the A64FX's power modes — normal, boost (2.2 GHz)
// and eco (one FP pipeline) — across a memory-bound and a compute-bound
// miniapp, reproducing the shape of the authors' companion power study:
// eco mode is nearly free for memory-bound codes, boost only pays off
// for compute-bound ones.
//
//	go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"
	"os"

	"fibersim/internal/arch"
	"fibersim/internal/harness"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/power"
	"fibersim/internal/vtime"
)

func main() {
	// The full E2 table for two contrasting apps.
	tab, err := harness.FigPowerModes(harness.Options{
		Size: common.SizeSmall,
		Apps: []string{"ffvc", "ntchem"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Then the derived decision metric: energy-delay product per mode.
	fmt.Println("energy-delay product (lower is better):")
	for _, appName := range []string{"ffvc", "ntchem"} {
		app, err := common.Lookup(appName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:\n", appName)
		for _, mode := range harness.PowerModes() {
			res, err := app.Run(common.RunConfig{
				Machine: arch.MustLookup(mode),
				Procs:   4, Threads: 12, Size: common.SizeSmall,
			})
			if err != nil {
				log.Fatal(err)
			}
			est, err := power.MustLookup(mode).ForRun(res.Time, res.Breakdown)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-12s time %-8s power %5.0f W  energy %8.3g J  EDP %8.3g J*s\n",
				mode, vtime.Format(res.Time), est.Watts, est.Joules, est.EDP)
		}
	}
}
