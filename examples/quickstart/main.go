// Quickstart: run one Fiber miniapp on the simulated A64FX node and
// print what the paper would report for it — runtime, achieved
// Gflop/s, the app's own figure of merit, and where the time went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/vtime"
)

func main() {
	app, err := common.Lookup("ccsqcd")
	if err != nil {
		log.Fatal(err)
	}

	// The canonical A64FX configuration: one MPI rank per CMG, twelve
	// OpenMP threads each, compact binding, unmodified build.
	cfg := common.RunConfig{
		Procs:   4,
		Threads: 12,
		Size:    common.SizeSmall,
	}

	fmt.Printf("running %s (%s) as %s ...\n", app.Name(), app.Description(), cfg.Normalized())
	res, err := app.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n  virtual runtime : %s\n", vtime.Format(res.Time))
	fmt.Printf("  performance     : %.1f Gflop/s\n", res.GFlops())
	fmt.Printf("  figure of merit : %.3g %s\n", res.Figure, res.FigureUnit)
	fmt.Printf("  verified        : %v (check = %.3g)\n", res.Verified, res.Check)
	fmt.Printf("  time breakdown  : %s\n", res.Breakdown)
	fmt.Printf("  rank imbalance  : %.1f%%\n", res.RankTimes.Imbalance()*100)
}
