// Observables demonstrates the science-side instrumentation the
// miniapps carry beyond timing: the lattice plaquette (ccsqcd), the
// radial distribution function (modylas), the read-quality filter
// (ngsa) and the Jastrow variational optimum (mvmc). Each is the
// standard first observable of its domain.
//
//	go run ./examples/observables
package main

import (
	"fmt"
	"log"

	"fibersim/internal/miniapps/ccsqcd"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/miniapps/modylas"
	"fibersim/internal/miniapps/mvmc"
	"fibersim/internal/miniapps/ngsa"
)

func main() {
	// Lattice QCD: the average plaquette of a unit and a random gauge.
	geo, err := ccsqcd.NewGeometry(4, 4, 4, 8, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ccsqcd — average plaquette:")
	fmt.Printf("  unit gauge   : %+.6f (exactly 1 by construction)\n",
		ccsqcd.NewUnitGauge(geo).AveragePlaquette())
	fmt.Printf("  random gauge : %+.6f (disordered: near 0)\n\n",
		ccsqcd.NewGauge(geo, 20210901).AveragePlaquette())

	// Molecular dynamics: g(r) of the jittered-lattice cluster.
	sys := modylas.NewSystem(512, 6, 20210901)
	r, g, err := sys.RDF(16, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("modylas — radial distribution function g(r):")
	for b := 0; b < len(r); b += 2 {
		bar := ""
		for i := 0; i < int(g[b]*12); i++ {
			bar += "#"
		}
		fmt.Printf("  r=%.3f %-40s %.2f\n", r[b], bar, g[b])
	}
	fmt.Println()

	// Genome pipeline: quality-filter pass rates for clean vs corrupt
	// reads.
	rng := common.NewRNG(7)
	clean := make([]bool, 80)
	dirty := make([]bool, 80)
	for i := range dirty {
		dirty[i] = i%3 != 0 // two thirds corrupted: fails the floor
	}
	stats := ngsa.FilterStats{}
	for trial := 0; trial < 200; trial++ {
		stats.Total += 2
		if ngsa.PassesFilter(ngsa.Qualities(rng, clean)) {
			stats.Passed++
		}
		if ngsa.PassesFilter(ngsa.Qualities(rng, dirty)) {
			stats.Passed++
		}
	}
	fmt.Printf("ngsa — quality filter pass rate over half-clean batch: %.0f%%\n\n", stats.PassRate()*100)

	// Variational Monte Carlo: optimize the Jastrow parameter.
	model, err := mvmc.NewModel(10, 3)
	if err != nil {
		log.Fatal(err)
	}
	h := mvmc.Hamiltonian{T: 1, V: 2}
	alpha, e, err := model.OptimizeAlpha(h, []float64{0, 0.2, 0.4, 0.6, 0.8}, 1500, 3)
	if err != nil {
		log.Fatal(err)
	}
	exactFree, err := model.ExactVariationalEnergy(h, 0)
	if err != nil {
		log.Fatal(err)
	}
	exactOpt, err := model.ExactVariationalEnergy(h, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mvmc — Jastrow optimization (L=10, N=3, V=2):")
	fmt.Printf("  bare determinant energy (exact) : %.4f\n", exactFree)
	fmt.Printf("  optimized alpha                 : %.1f\n", alpha)
	fmt.Printf("  correlated energy (exact / MC)  : %.4f / %.4f\n", exactOpt, e)
}
