// Hybridsweep reproduces the core of the paper's evaluation for one
// app: the MPI x OpenMP decomposition grid and the thread-stride sweep
// on the A64FX (Figs. 1 and 2), printed side by side.
//
//	go run ./examples/hybridsweep               # ffvc, small
//	go run ./examples/hybridsweep mvmc test     # another app / size
package main

import (
	"fmt"
	"log"
	"os"

	"fibersim/internal/harness"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
)

func main() {
	appName := "ffvc"
	sizeName := "small"
	if len(os.Args) > 1 {
		appName = os.Args[1]
	}
	if len(os.Args) > 2 {
		sizeName = os.Args[2]
	}
	size, err := common.ParseSize(sizeName)
	if err != nil {
		log.Fatal(err)
	}
	opt := harness.Options{Size: size, Apps: []string{appName}}

	fmt.Printf("decomposition and stride study for %q at size %q on the A64FX\n\n", appName, sizeName)

	decomp, err := harness.FigDecomposition(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := decomp.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	stride, err := harness.FigThreadStride(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := stride.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
