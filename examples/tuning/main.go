// Tuning walks through the paper's compiler study (Fig. 4) for the
// scalar-heavy miniapps and then uses the analyzer to explain *why*
// each lever helps: dependency-stall headroom on the A64FX's small
// out-of-order window versus SIMD headroom on its 512-bit SVE units.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"os"

	"fibersim/internal/arch"
	"fibersim/internal/core"
	"fibersim/internal/harness"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
)

func main() {
	opt := harness.Options{Size: common.SizeSmall, Apps: []string{"mvmc", "ngsa", "ffb"}}

	tab, err := harness.FigCompilerTuning(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Ask the analyzer where the headroom comes from, per kernel.
	mdl := core.NewModel(arch.MustLookup("a64fx"))
	cores := make([]int, 12)
	for i := range cores {
		cores[i] = i
	}
	ex := core.Exec{ThreadCores: cores, HomeDomain: -1, Compiler: core.AsIs()}

	fmt.Println("per-kernel analysis (A64FX, one CMG, as-is build):")
	for _, name := range opt.Apps {
		app, err := common.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range app.Kernels(common.SizeSmall) {
			a, err := mdl.Analyze(k, 1e6, ex)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s %-18s bottleneck=%-8s simd-headroom=%.2fx sched-headroom=%.2fx\n",
				name, k.Name, a.Bottleneck, a.SIMDHeadroom, a.SchedHeadroom)
			fmt.Printf("             -> %s\n", a.Recommendation)
		}
	}
}
