// Compare pits the four catalogue processors against each other on the
// full miniapp suite (the paper's Fig. 5) plus the STREAM backdrop
// (Fig. 6).
//
//	go run ./examples/compare            # small data sets
//	go run ./examples/compare test       # quick pass
package main

import (
	"fmt"
	"log"
	"os"

	"fibersim/internal/harness"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
)

func main() {
	sizeName := "small"
	if len(os.Args) > 1 {
		sizeName = os.Args[1]
	}
	size, err := common.ParseSize(sizeName)
	if err != nil {
		log.Fatal(err)
	}
	opt := harness.Options{Size: size}

	fmt.Printf("cross-processor comparison at size %q (this sweeps the whole suite; a minute or two at small size)\n\n", sizeName)

	stream, err := harness.FigStream(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := stream.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	cmp, err := harness.FigProcessorComparison(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := cmp.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
