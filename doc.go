// Package fibersim reproduces "Performance Evaluation and Analysis of
// A64FX many-core Processor for the Fiber Miniapp Suite" (Sato &
// Tsuji, IEEE CLUSTER 2021) as a simulation study: machine models of
// the A64FX and its comparison processors, functional MPI/OpenMP
// runtimes with virtual-time accounting, an analytic performance model,
// and Go re-implementations of the eight Fiber miniapps.
//
// The root package only anchors the module; the library lives under
// internal/ (see DESIGN.md for the map) and is exercised through
// cmd/fiberbench, cmd/fiberinfo, cmd/fibersweep, the examples, and the
// benchmarks in bench_test.go, which regenerate every table and figure
// of the paper.
package fibersim

// Version identifies the reproduction release.
const Version = "1.0.0"
