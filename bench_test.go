package fibersim_test

// One benchmark per table and figure of the paper (see DESIGN.md's
// experiment index), plus the ablation benches for the performance
// model's design choices. Benchmarks run the test-size data sets so
// `go test -bench=.` finishes quickly; EXPERIMENTS.md records the
// small-size numbers produced by cmd/fiberbench.

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"fibersim/internal/arch"
	"fibersim/internal/core"
	"fibersim/internal/harness"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
)

func benchOpts() harness.Options {
	return harness.Options{Size: common.SizeTest}
}

// runExperiment drives one harness experiment b.N times.
func runExperiment(b *testing.B, id string, opts harness.Options) *harness.Table {
	b.Helper()
	e, err := harness.LookupExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *harness.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err = e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := tab.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
	return tab
}

func BenchmarkTable1Machines(b *testing.B) {
	tab := runExperiment(b, "T1", benchOpts())
	if len(tab.Rows) != 4 {
		b.Fatalf("want 4 machines, got %d", len(tab.Rows))
	}
}

func BenchmarkTable2Miniapps(b *testing.B) {
	tab := runExperiment(b, "T2", benchOpts())
	if len(tab.Rows) < 8 {
		b.Fatal("suite incomplete")
	}
}

func BenchmarkFig1Decomposition(b *testing.B) {
	tab := runExperiment(b, "F1", benchOpts())
	if len(tab.Rows) != 8 {
		b.Fatalf("want 8 apps, got %d", len(tab.Rows))
	}
}

func BenchmarkFig2ThreadStride(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"ccsqcd", "ffvc", "nicam", "mvmc"}
	tab := runExperiment(b, "F2", opts)
	// Shape metric: worst/best stride ratio for the stencil app.
	cell, err := tab.Cell("ffvc", "worst/best")
	if err != nil {
		b.Fatal(err)
	}
	v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	b.ReportMetric(v, "stride-spread")
}

func BenchmarkFig3ProcAlloc(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"ffvc", "ntchem"}
	tab := runExperiment(b, "F3", opts)
	cell, err := tab.Cell("ntchem", "spread")
	if err != nil {
		b.Fatal(err)
	}
	v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	b.ReportMetric(v, "alloc-spread-%")
}

func BenchmarkFig4CompilerTuning(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"mvmc", "ngsa"}
	tab := runExperiment(b, "F4", opts)
	cell, err := tab.Cell("mvmc", "speedup")
	if err != nil {
		b.Fatal(err)
	}
	v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	b.ReportMetric(v, "mvmc-speedup")
}

func BenchmarkFig5ProcessorComparison(b *testing.B) {
	tab := runExperiment(b, "F5", benchOpts())
	if len(tab.Rows) != 8 {
		b.Fatalf("want 8 apps, got %d", len(tab.Rows))
	}
}

func BenchmarkFig6Stream(b *testing.B) {
	tab := runExperiment(b, "F6", benchOpts())
	a64, err := tab.Cell("a64fx", "GB/s")
	if err != nil {
		b.Fatal(err)
	}
	v, _ := strconv.ParseFloat(a64, 64)
	b.ReportMetric(v, "a64fx-GB/s")
}

func BenchmarkTable3BestConfig(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"ccsqcd", "ffvc", "mvmc"}
	tab := runExperiment(b, "T3", opts)
	if len(tab.Rows) != 3 {
		b.Fatal("incomplete best-config table")
	}
}

// --- Ablations: why the performance model is built the way it is ---

// benchKernel is a mid-intensity kernel that exercises both roofline
// sides.
func benchKernel() core.Kernel {
	return core.Kernel{
		Name: "ablation", FlopsPerIter: 16, FMAFrac: 0.8,
		LoadBytesPerIter: 24, StoreBytesPerIter: 8,
		VectorizableFrac: 0.9, AutoVecFrac: 0.3, DepChainPenalty: 1.2,
		Pattern: core.PatternStream, WorkingSetBytes: 1 << 28,
	}
}

func fullNodeExec() core.Exec {
	cores := make([]int, 48)
	for i := range cores {
		cores[i] = i
	}
	return core.Exec{ThreadCores: cores, HomeDomain: -1, Compiler: core.AsIs()}
}

// BenchmarkAblationNoOverlap disables compute/memory overlap: the
// pure-sum combiner overestimates time; the metric reports by how much.
func BenchmarkAblationNoOverlap(b *testing.B) {
	m := arch.MustLookup("a64fx")
	k := benchKernel()
	ex := fullNodeExec()
	var ratio float64
	for i := 0; i < b.N; i++ {
		withOverlap := core.NewModel(m)
		noOverlap := core.NewModel(m)
		noOverlap.Overlap = 0
		a, err := withOverlap.KernelTime(k, 1e8, ex)
		if err != nil {
			b.Fatal(err)
		}
		c, err := noOverlap.KernelTime(k, 1e8, ex)
		if err != nil {
			b.Fatal(err)
		}
		ratio = c.Total / a.Total
	}
	if ratio <= 1 {
		b.Fatalf("no-overlap model should be slower, got ratio %g", ratio)
	}
	b.ReportMetric(ratio, "overestimate-x")
}

// BenchmarkAblationFlatMemory removes the NUMA structure (no shared
// remote traffic, no remote latency): the thread-stride effect
// vanishes, which is why the model carries the CMG topology.
func BenchmarkAblationFlatMemory(b *testing.B) {
	m := arch.MustLookup("a64fx")
	// Bandwidth-dominated kernel: the stride effect acts on memory time.
	k := core.Kernel{
		Name: "ablation-stream", FlopsPerIter: 2, FMAFrac: 1,
		LoadBytesPerIter: 16, StoreBytesPerIter: 8,
		VectorizableFrac: 1, AutoVecFrac: 1,
		Pattern: core.PatternStream, WorkingSetBytes: 1 << 28,
	}
	compact := core.Exec{ThreadCores: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		HomeDomain: -1, Compiler: core.AsIs(), DomainLoad: []int{12, 12, 12, 12}}
	spread := core.Exec{ThreadCores: []int{0, 12, 24, 36, 1, 13, 25, 37, 2, 14, 26, 38},
		HomeDomain: -1, Compiler: core.AsIs(), DomainLoad: []int{12, 12, 12, 12}}
	var withNUMA, flat float64
	for i := 0; i < b.N; i++ {
		numaModel := core.NewModel(m)
		flatModel := core.NewModel(m)
		flatModel.SharedRemoteFrac = 0
		tc, err := numaModel.KernelTime(k, 1e8, compact)
		if err != nil {
			b.Fatal(err)
		}
		ts, err := numaModel.KernelTime(k, 1e8, spread)
		if err != nil {
			b.Fatal(err)
		}
		withNUMA = ts.Total / tc.Total
		fc, err := flatModel.KernelTime(k, 1e8, compact)
		if err != nil {
			b.Fatal(err)
		}
		fs, err := flatModel.KernelTime(k, 1e8, spread)
		if err != nil {
			b.Fatal(err)
		}
		flat = fs.Total / fc.Total
	}
	if withNUMA <= flat {
		b.Fatalf("NUMA model must show a stride effect (%g) the flat model hides (%g)", withNUMA, flat)
	}
	b.ReportMetric(withNUMA, "stride-effect-numa")
	b.ReportMetric(flat, "stride-effect-flat")
}

// BenchmarkAblationInfiniteOoO gives every core an unbounded effective
// out-of-order window: the instruction-scheduling compiler option
// becomes a no-op, demonstrating the mechanism behind Fig. 4.
func BenchmarkAblationInfiniteOoO(b *testing.B) {
	m := arch.MustLookup("a64fx")
	// Compute-dominated, dependency-chained kernel: scheduling is the
	// only lever.
	k := core.Kernel{
		Name: "ablation-chain", FlopsPerIter: 24, FMAFrac: 0.5,
		LoadBytesPerIter: 8, VectorizableFrac: 0.9, AutoVecFrac: 0.2,
		DepChainPenalty: 2, Pattern: core.PatternStrided,
		WorkingSetBytes: 1 << 20,
	}
	ex := fullNodeExec()
	sched := ex
	sched.Compiler.SoftwarePipelining = true
	sched.Compiler.LoopFission = true
	var realGain, infGain float64
	for i := 0; i < b.N; i++ {
		realModel := core.NewModel(m)
		infModel := core.NewModel(m)
		infModel.RefWindow = 1 // every window "hides everything"
		ra, err := realModel.KernelTime(k, 1e8, ex)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := realModel.KernelTime(k, 1e8, sched)
		if err != nil {
			b.Fatal(err)
		}
		realGain = ra.Total / rs.Total
		ia, err := infModel.KernelTime(k, 1e8, ex)
		if err != nil {
			b.Fatal(err)
		}
		is, err := infModel.KernelTime(k, 1e8, sched)
		if err != nil {
			b.Fatal(err)
		}
		infGain = ia.Total / is.Total
	}
	if realGain <= infGain {
		b.Fatalf("scheduling gain must require a finite window: real %g vs infinite %g", realGain, infGain)
	}
	b.ReportMetric(realGain, "sched-gain-real")
	b.ReportMetric(infGain, "sched-gain-infinite-ooo")
}

// BenchmarkAblationFirstTouch contrasts the two first-touch policies
// the model supports: parallel first-touch (pages local to each
// thread) versus serial first-touch (all pages in the master thread's
// CMG) for a full-node bandwidth-bound kernel. The serial policy's
// collapse is why HPC codes initialize data in parallel — and why the
// model must distinguish the two.
func BenchmarkAblationFirstTouch(b *testing.B) {
	m := arch.MustLookup("a64fx")
	k := core.Kernel{
		Name: "ablation-ft", FlopsPerIter: 2, FMAFrac: 1,
		LoadBytesPerIter: 16, StoreBytesPerIter: 8,
		VectorizableFrac: 1, AutoVecFrac: 1,
		Pattern: core.PatternStream, WorkingSetBytes: 1 << 28,
	}
	parallelFT := fullNodeExec() // HomeDomain: -1
	serialFT := fullNodeExec()
	serialFT.HomeDomain = 0
	var slowdown float64
	for i := 0; i < b.N; i++ {
		mdl := core.NewModel(m)
		pp, err := mdl.KernelTime(k, 1e8, parallelFT)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := mdl.KernelTime(k, 1e8, serialFT)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = ss.Total / pp.Total
	}
	if slowdown < 2 {
		b.Fatalf("serial first-touch should collapse bandwidth, got %.2fx", slowdown)
	}
	b.ReportMetric(slowdown, "serial-ft-slowdown")
}
