// Command fiberinfo lists the machine catalogue, the miniapp suite and
// the available experiments, and validates run manifests.
//
// Usage:
//
//	fiberinfo -machines                   # Table 1
//	fiberinfo -apps                       # Table 2 (kernel descriptors)
//	fiberinfo -experiments                # the table/figure index
//	fiberinfo -validate-manifest run.json  # schema + invariant check
//	fiberinfo -validate-trace trace.json   # service-trace schema check
//	fiberinfo -validate-selfprofile p.json # self-profile schema check
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fibersim/internal/harness"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/obs"
	"fibersim/internal/power"
)

func main() {
	machines := flag.Bool("machines", false, "print the processor catalogue (Table 1)")
	apps := flag.Bool("apps", false, "print the miniapp suite and kernels (Table 2)")
	exps := flag.Bool("experiments", false, "list the reproducible tables and figures")
	pw := flag.Bool("power", false, "print the power profiles and A64FX operating modes")
	size := flag.String("size", "small", "data set for kernel descriptors: test, small, medium")
	validate := flag.String("validate-manifest", "", "parse and validate a run manifest, exiting non-zero on failure")
	validateTrace := flag.String("validate-trace", "", "parse and validate a service trace export, exiting non-zero on failure")
	validateSelf := flag.String("validate-selfprofile", "", "parse and validate a self-profile artifact, exiting non-zero on failure")
	flag.Parse()

	if *validate != "" {
		os.Exit(runValidate(*validate, os.Stdout, os.Stderr))
	}
	if *validateTrace != "" {
		os.Exit(runValidateTrace(*validateTrace, os.Stdout, os.Stderr))
	}
	if *validateSelf != "" {
		os.Exit(runValidateSelfProfile(*validateSelf, os.Stdout, os.Stderr))
	}

	if !*machines && !*apps && !*exps && !*pw {
		*machines, *apps, *exps, *pw = true, true, true, true
	}
	sz, err := common.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := harness.Options{Size: sz}

	if *machines {
		t, err := harness.TableMachines(opt)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *apps {
		t, err := harness.TableMiniapps(opt)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *pw {
		fmt.Println("== power profiles ==")
		for _, name := range power.Names() {
			p := power.MustLookup(name)
			fmt.Printf("  %-12s idle %3.0f W  +compute %3.0f W  +memory %3.0f W  (max %3.0f W)\n",
				name, p.IdleWatts, p.ComputeWatts, p.MemoryWatts, p.MaxWatts())
		}
	}
	if *exps {
		fmt.Println("== experiments ==")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-3s  %-55s %s\n", e.ID, e.Title, e.Description)
		}
	}
}

// runValidate parses and validates one run manifest, including the
// fault block's internal consistency (finite non-negative seconds,
// noise seconds backed by noise events, no empty blocks). It returns
// the process exit code: 0 for a valid verified manifest, 1 otherwise.
func runValidate(path string, stdout, stderr io.Writer) int {
	m, err := obs.ReadManifestFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "fiberinfo:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: valid manifest: %s on %s (%dx%d), verified=%v, %d kernels\n",
		path, m.App, m.Config.Machine, m.Config.Procs, m.Config.Threads,
		m.Verified, len(m.Profile.Kernels))
	if m.Fault != nil {
		fmt.Fprintf(stdout, "%s: fault block: straggler %gs, %d noise events (%gs), %d degraded sends, %d crashes\n",
			path, m.Fault.StragglerSeconds, m.Fault.NoiseEvents, m.Fault.NoiseSeconds,
			m.Fault.DegradedSends, m.Fault.Crashes)
	}
	if !m.Verified {
		fmt.Fprintf(stderr, "fiberinfo: %s: run did NOT verify (check=%g)\n", path, m.Check)
		return 1
	}
	return 0
}

// runValidateTrace checks a fibersim/service-trace/v1 document: the
// schema, the span tree invariants (one root, resolvable parents), and
// that the trace is actually finished (no open spans — an export with
// open spans means the producer serialized a live trace).
func runValidateTrace(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "fiberinfo:", err)
		return 1
	}
	defer f.Close()
	tr, err := obs.ParseTrace(f)
	if err != nil {
		fmt.Fprintln(stderr, "fiberinfo:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: valid trace %s (%q): %d spans, %.6fs\n",
		path, tr.ID, tr.Name, len(tr.Spans), tr.DurationSeconds)
	if tr.OpenSpans > 0 {
		fmt.Fprintf(stderr, "fiberinfo: %s: trace finalized with %d spans still open\n", path, tr.OpenSpans)
		return 1
	}
	return 0
}

// runValidateSelfProfile checks a fibersim/self-profile/v1 document:
// schema identity, the canonical stage set, finite non-negative
// numbers, and stage times that sum to the recorded wall total —
// ReadSelfProfileFile enforces all of it, so a parse is a validation.
func runValidateSelfProfile(path string, stdout, stderr io.Writer) int {
	p, err := obs.ReadSelfProfileFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "fiberinfo:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: valid self-profile %q: %d stages, wall %.6fs, %d allocs\n",
		path, p.Label, len(p.Stages), p.WallSeconds, p.Allocs)
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiberinfo:", err)
	os.Exit(1)
}
