// Command fiberinfo lists the machine catalogue, the miniapp suite and
// the available experiments.
//
// Usage:
//
//	fiberinfo -machines        # Table 1
//	fiberinfo -apps            # Table 2 (kernel descriptors)
//	fiberinfo -experiments     # the table/figure index
package main

import (
	"flag"
	"fmt"
	"os"

	"fibersim/internal/harness"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/power"
)

func main() {
	machines := flag.Bool("machines", false, "print the processor catalogue (Table 1)")
	apps := flag.Bool("apps", false, "print the miniapp suite and kernels (Table 2)")
	exps := flag.Bool("experiments", false, "list the reproducible tables and figures")
	pw := flag.Bool("power", false, "print the power profiles and A64FX operating modes")
	size := flag.String("size", "small", "data set for kernel descriptors: test, small, medium")
	flag.Parse()

	if !*machines && !*apps && !*exps && !*pw {
		*machines, *apps, *exps, *pw = true, true, true, true
	}
	sz, err := common.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := harness.Options{Size: sz}

	if *machines {
		t, err := harness.TableMachines(opt)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *apps {
		t, err := harness.TableMiniapps(opt)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *pw {
		fmt.Println("== power profiles ==")
		for _, name := range power.Names() {
			p := power.MustLookup(name)
			fmt.Printf("  %-12s idle %3.0f W  +compute %3.0f W  +memory %3.0f W  (max %3.0f W)\n",
				name, p.IdleWatts, p.ComputeWatts, p.MemoryWatts, p.MaxWatts())
		}
	}
	if *exps {
		fmt.Println("== experiments ==")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-3s  %-55s %s\n", e.ID, e.Title, e.Description)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiberinfo:", err)
	os.Exit(1)
}
