// Command fiberinfo lists the machine catalogue, the miniapp suite and
// the available experiments, and validates run manifests.
//
// Usage:
//
//	fiberinfo -machines                   # Table 1
//	fiberinfo -apps                       # Table 2 (kernel descriptors)
//	fiberinfo -experiments                # the table/figure index
//	fiberinfo -validate-manifest run.json # schema + invariant check
package main

import (
	"flag"
	"fmt"
	"os"

	"fibersim/internal/harness"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/obs"
	"fibersim/internal/power"
)

func main() {
	machines := flag.Bool("machines", false, "print the processor catalogue (Table 1)")
	apps := flag.Bool("apps", false, "print the miniapp suite and kernels (Table 2)")
	exps := flag.Bool("experiments", false, "list the reproducible tables and figures")
	pw := flag.Bool("power", false, "print the power profiles and A64FX operating modes")
	size := flag.String("size", "small", "data set for kernel descriptors: test, small, medium")
	validate := flag.String("validate-manifest", "", "parse and validate a run manifest, exiting non-zero on failure")
	flag.Parse()

	if *validate != "" {
		m, err := obs.ReadManifestFile(*validate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid manifest: %s on %s (%dx%d), verified=%v, %d kernels\n",
			*validate, m.App, m.Config.Machine, m.Config.Procs, m.Config.Threads,
			m.Verified, len(m.Profile.Kernels))
		if !m.Verified {
			fatal(fmt.Errorf("%s: run did NOT verify (check=%g)", *validate, m.Check))
		}
		return
	}

	if !*machines && !*apps && !*exps && !*pw {
		*machines, *apps, *exps, *pw = true, true, true, true
	}
	sz, err := common.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := harness.Options{Size: sz}

	if *machines {
		t, err := harness.TableMachines(opt)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *apps {
		t, err := harness.TableMiniapps(opt)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *pw {
		fmt.Println("== power profiles ==")
		for _, name := range power.Names() {
			p := power.MustLookup(name)
			fmt.Printf("  %-12s idle %3.0f W  +compute %3.0f W  +memory %3.0f W  (max %3.0f W)\n",
				name, p.IdleWatts, p.ComputeWatts, p.MemoryWatts, p.MaxWatts())
		}
	}
	if *exps {
		fmt.Println("== experiments ==")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-3s  %-55s %s\n", e.ID, e.Title, e.Description)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiberinfo:", err)
	os.Exit(1)
}
