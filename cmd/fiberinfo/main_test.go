package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fibersim/internal/obs"
)

func validManifest() *obs.Manifest {
	return &obs.Manifest{
		Schema: obs.ManifestSchema,
		App:    "stream",
		Config: obs.RunInfo{
			Machine: "a64fx", Procs: 4, Threads: 12,
			Alloc: "block", Bind: "stride1",
			Compiler: "as-is", Size: "test", Seed: 20210901,
		},
		Verified:    true,
		TimeSeconds: 0.25,
		GFlops:      123.4,
	}
}

func TestValidateAcceptsGoodManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := validManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidate(path, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "valid manifest: stream on a64fx (4x12)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateReportsConsistentFaultBlock(t *testing.T) {
	m := validManifest()
	m.Fault = &obs.FaultSummary{StragglerSeconds: 1.5, NoiseEvents: 10, NoiseSeconds: 0.01}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidate(path, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fault block: straggler 1.5s, 10 noise events") {
		t.Errorf("fault summary missing: %q", out.String())
	}
}

// The committed fixture has a fault block claiming 0.5 s of noise
// delay across zero noise events — an inconsistency that used to pass
// validation silently.
func TestValidateRejectsCorruptFaultBlock(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidate(filepath.Join("testdata", "corrupt-fault.json"), &out, &errb); code == 0 {
		t.Fatal("corrupt fault block passed validation")
	}
	if !strings.Contains(errb.String(), "zero noise_events") {
		t.Errorf("stderr should name the inconsistency: %q", errb.String())
	}
}

func TestValidateFailsUnverifiedRun(t *testing.T) {
	m := validManifest()
	m.Verified = false
	m.Check = 0.5
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidate(path, &out, &errb); code != 1 {
		t.Fatalf("unverified run exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "did NOT verify") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestValidateMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidate(filepath.Join(t.TempDir(), "none.json"), &out, &errb); code != 1 {
		t.Fatal("missing file must fail")
	}
}

// exportTrace builds one finished trace under an injected clock and
// writes its fibersim/service-trace/v1 export to a temp file. With
// leaveOpen the root ends while a child is still running, which a
// valid export must flag.
func exportTrace(t *testing.T, leaveOpen bool) string {
	t.Helper()
	clock := time.Unix(1700000000, 0)
	tracer, err := obs.NewTracer(obs.TracerConfig{
		Now:  func() time.Time { clock = clock.Add(time.Millisecond); return clock },
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := tracer.StartTrace("job", obs.SpanContext{})
	child := root.StartChild("queue-wait")
	if !leaveOpen {
		child.End()
	}
	root.End()
	tr, ok := tracer.Trace(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace not stored after root End")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateTraceAcceptsFinishedTrace(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidateTrace(exportTrace(t, false), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "valid trace") || !strings.Contains(out.String(), "2 spans") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateTraceFlagsOpenSpans(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidateTrace(exportTrace(t, true), &out, &errb); code != 1 {
		t.Fatalf("open-span export exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "still open") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// selfProfilePath writes one real recorder's profile under an injected
// clock — the same artifact fiberbench -selfprofile emits.
func selfProfilePath(t *testing.T) string {
	t.Helper()
	clock := time.Unix(1700000000, 0)
	cost := obs.NewCostRecorder(func() time.Time { clock = clock.Add(time.Millisecond); return clock })
	cost.Start()
	cost.End(obs.StageCharge, cost.Begin())
	cost.End(obs.StageRender, cost.Begin())
	cost.Finish()
	path := filepath.Join(t.TempDir(), "self.json")
	if err := cost.Profile("stream").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateSelfProfileAcceptsGoodProfile(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidateSelfProfile(selfProfilePath(t), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `valid self-profile "stream"`) {
		t.Errorf("output = %q", out.String())
	}
}

// The committed fixture claims 0.25 s of wall time over stages summing
// to 0.5 s — a broken-invariant document validation must reject.
func TestValidateSelfProfileRejectsCorruptFixture(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidateSelfProfile(filepath.Join("testdata", "corrupt-selfprofile.json"), &out, &errb); code == 0 {
		t.Fatal("corrupt self-profile passed validation")
	}
	if !strings.Contains(errb.String(), "stages sum to") {
		t.Errorf("stderr should name the sum mismatch: %q", errb.String())
	}
}

func TestValidateSelfProfileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(path, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidateSelfProfile(path, &out, &errb); code != 1 {
		t.Fatal("bad schema must fail")
	}
	if code := runValidateSelfProfile(filepath.Join(t.TempDir(), "none.json"), &out, &errb); code != 1 {
		t.Fatal("missing file must fail")
	}
}

func TestValidateTraceRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(path, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidateTrace(path, &out, &errb); code != 1 {
		t.Fatal("bad schema must fail")
	}
	if code := runValidateTrace(filepath.Join(t.TempDir(), "none.json"), &out, &errb); code != 1 {
		t.Fatal("missing file must fail")
	}
}
