package main

import (
	"path/filepath"
	"strings"
	"testing"

	"fibersim/internal/obs"
)

func validManifest() *obs.Manifest {
	return &obs.Manifest{
		Schema: obs.ManifestSchema,
		App:    "stream",
		Config: obs.RunInfo{
			Machine: "a64fx", Procs: 4, Threads: 12,
			Alloc: "block", Bind: "stride1",
			Compiler: "as-is", Size: "test", Seed: 20210901,
		},
		Verified:    true,
		TimeSeconds: 0.25,
		GFlops:      123.4,
	}
}

func TestValidateAcceptsGoodManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := validManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidate(path, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "valid manifest: stream on a64fx (4x12)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateReportsConsistentFaultBlock(t *testing.T) {
	m := validManifest()
	m.Fault = &obs.FaultSummary{StragglerSeconds: 1.5, NoiseEvents: 10, NoiseSeconds: 0.01}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidate(path, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fault block: straggler 1.5s, 10 noise events") {
		t.Errorf("fault summary missing: %q", out.String())
	}
}

// The committed fixture has a fault block claiming 0.5 s of noise
// delay across zero noise events — an inconsistency that used to pass
// validation silently.
func TestValidateRejectsCorruptFaultBlock(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidate(filepath.Join("testdata", "corrupt-fault.json"), &out, &errb); code == 0 {
		t.Fatal("corrupt fault block passed validation")
	}
	if !strings.Contains(errb.String(), "zero noise_events") {
		t.Errorf("stderr should name the inconsistency: %q", errb.String())
	}
}

func TestValidateFailsUnverifiedRun(t *testing.T) {
	m := validManifest()
	m.Verified = false
	m.Check = 0.5
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := runValidate(path, &out, &errb); code != 1 {
		t.Fatalf("unverified run exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "did NOT verify") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestValidateMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if code := runValidate(filepath.Join(t.TempDir(), "none.json"), &out, &errb); code != 1 {
		t.Fatal("missing file must fail")
	}
}
