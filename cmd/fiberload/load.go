package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
	"fibersim/internal/tenant"
)

// ReportSchema identifies the load report layout; bump on any
// incompatible change.
const ReportSchema = "fibersim/load-report/v1"

// weightedSpec is one cell of the -mix: a run spec and its relative
// draw weight.
type weightedSpec struct {
	spec   jobs.Spec
	weight int
}

// parseMix parses the -mix grammar: comma-separated app[:weight]
// entries, e.g. "stream:3,mvmc". Weight defaults to 1.
func parseMix(s, size string) ([]weightedSpec, error) {
	var mix []weightedSpec
	for _, cell := range strings.Split(s, ",") {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		app, weightStr, hasWeight := strings.Cut(cell, ":")
		weight := 1
		if hasWeight {
			if _, err := fmt.Sscanf(weightStr, "%d", &weight); err != nil || weight < 1 {
				return nil, fmt.Errorf("fiberload: mix cell %q: weight must be a positive integer", cell)
			}
		}
		mix = append(mix, weightedSpec{spec: jobs.Spec{App: app, Size: size}, weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("fiberload: empty spec mix")
	}
	return mix, nil
}

// pickTenant draws one tenant name by weight using r. Empty list
// means the run is untenanted and every spec keeps Tenant == "".
func pickTenant(ws []tenant.Weight, r *rand.Rand) string {
	total := 0
	for _, w := range ws {
		total += w.Weight
	}
	n := r.Intn(total)
	for _, w := range ws {
		n -= w.Weight
		if n < 0 {
			return w.Name
		}
	}
	return ws[len(ws)-1].Name
}

// pick draws one spec by weight using r.
func pick(mix []weightedSpec, r *rand.Rand) jobs.Spec {
	total := 0
	for _, w := range mix {
		total += w.weight
	}
	n := r.Intn(total)
	for _, w := range mix {
		n -= w.weight
		if n < 0 {
			return w.spec
		}
	}
	return mix[len(mix)-1].spec
}

// Percentiles summarizes a latency sample.
type Percentiles struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// percentiles computes the summary over samples (seconds). The q-th
// percentile is the nearest-rank value: the smallest sample with at
// least q of the mass at or below it.
func percentiles(samples []float64) Percentiles {
	if len(samples) == 0 {
		return Percentiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(q float64) float64 {
		i := int(q*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Percentiles{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Mean: sum / float64(len(s)),
		Max:  s[len(s)-1],
	}
}

// TraceSplit is the queue-wait vs. run-time attribution pulled from a
// sample of job traces: where did the accepted jobs' wall time go?
type TraceSplit struct {
	// Sampled counts the traces fetched and parsed.
	Sampled int `json:"sampled"`
	// QueueWait/Run/Backoff/Journal are mean seconds per sampled trace
	// in each lifecycle phase (run falls back to the attempt span when
	// the runner opened no harness run span).
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	RunSeconds       float64 `json:"run_seconds"`
	BackoffSeconds   float64 `json:"backoff_seconds"`
	JournalSeconds   float64 `json:"journal_seconds"`
}

// TenantReport is one tenant's slice of the run: how much of the load
// it offered, how much was admitted, and what latency it saw. The
// queue-wait percentiles come from the terminal jobs' own accounting
// (QueueWaitSeconds), so a noisy neighbor shows up here as a fat
// queue-wait tail on the victim tenant.
type TenantReport struct {
	Requests   int         `json:"requests"`
	Accepted   int         `json:"accepted"`
	Shed429    int         `json:"shed_429"`
	Errors     int         `json:"errors"`
	JobsDone   int         `json:"jobs_done"`
	JobsFailed int         `json:"jobs_failed"`
	Cached     int         `json:"cached"`
	Coalesced  int         `json:"coalesced"`
	ShedRate   float64     `json:"shed_rate"`
	ErrorRate  float64     `json:"error_rate"`
	Latency    Percentiles `json:"latency_seconds"`
	QueueWait  Percentiles `json:"queue_wait_seconds"`
}

// Report is fiberload's machine-readable output.
type Report struct {
	Schema     string `json:"schema"`
	Requests   int    `json:"requests"`
	Accepted   int    `json:"accepted"`
	Shed429    int    `json:"shed_429"`
	Errors     int    `json:"errors"`
	JobsDone   int    `json:"jobs_done"`
	JobsFailed int    `json:"jobs_failed"`
	// Cached counts submissions answered 200 from the idempotent result
	// cache (terminal immediately); Coalesced counts 202s that attached
	// to an already-in-flight duplicate instead of enqueueing. Both are
	// included in Accepted.
	Cached    int     `json:"cached"`
	Coalesced int     `json:"coalesced"`
	ErrorRate float64 `json:"error_rate"`
	ShedRate  float64 `json:"shed_rate"`
	// Latency is submit-to-terminal wall time over completed jobs.
	Latency Percentiles `json:"latency_seconds"`
	// Admission is the POST /jobs round-trip alone.
	Admission Percentiles `json:"admission_seconds"`
	Split     TraceSplit  `json:"trace_split"`
	// Runtime is the server process's own GC/scheduler interference
	// over the run (nil when fiberd runs without -runtime-metrics).
	Runtime *RuntimeDelta `json:"server_runtime,omitempty"`
	// Tenants breaks the run down per tenant when -tenants is set.
	Tenants map[string]TenantReport `json:"tenants,omitempty"`
}

// RuntimeDelta diffs two fiberd /debug/runtime snapshots taken around
// the load run: how much the server's own runtime — GC cycles, pause
// time, allocation — interfered with the latencies this report
// measures. End-of-run state rides along for context.
type RuntimeDelta struct {
	// GCCycles/AllocBytes/GCPauseSeconds are deltas over the run.
	GCCycles       int64   `json:"gc_cycles"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	GCPauseSeconds float64 `json:"gc_pause_seconds"`
	// HeapLiveBytes/Goroutines are the end-of-run state.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	Goroutines    int64  `json:"goroutines"`
	// SchedLatencyP99Seconds is the server's process-lifetime p99
	// goroutine scheduling latency at end of run.
	SchedLatencyP99Seconds float64 `json:"sched_latency_p99_seconds"`
}

// fetchRuntime grabs one /debug/runtime snapshot; ok is false when the
// endpoint is absent (fiberd without -runtime-metrics) or unreachable —
// the report then simply omits server-side interference.
func (l *loader) fetchRuntime(ctx context.Context) (obs.RuntimeSnapshot, bool) {
	req, err := http.NewRequestWithContext(ctx, "GET", l.base+"/debug/runtime", nil)
	if err != nil {
		return obs.RuntimeSnapshot{}, false
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return obs.RuntimeSnapshot{}, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return obs.RuntimeSnapshot{}, false
	}
	var snap obs.RuntimeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return obs.RuntimeSnapshot{}, false
	}
	return snap, true
}

// diffRuntime folds two snapshots into the interference delta. A
// counter that went backwards (server restarted mid-run) restarts the
// baseline at the after value rather than going negative.
func diffRuntime(before, after obs.RuntimeSnapshot) *RuntimeDelta {
	d := &RuntimeDelta{
		HeapLiveBytes:          after.HeapLiveBytes,
		Goroutines:             after.Goroutines,
		SchedLatencyP99Seconds: after.SchedLatencyP99Seconds,
	}
	if after.GCCycles >= before.GCCycles {
		d.GCCycles = int64(after.GCCycles - before.GCCycles)
	} else {
		d.GCCycles = int64(after.GCCycles)
	}
	if after.AllocBytes >= before.AllocBytes {
		d.AllocBytes = after.AllocBytes - before.AllocBytes
	} else {
		d.AllocBytes = after.AllocBytes
	}
	if dp := after.GCPauseSeconds - before.GCPauseSeconds; dp > 0 {
		d.GCPauseSeconds = dp
	}
	return d
}

// tenantTally accumulates one tenant's counters during the run.
type tenantTally struct {
	accepted   int
	shed       int
	errors     int
	jobsDone   int
	jobsFailed int
	cached     int
	coalesced  int
	latencies  []float64
	queueWaits []float64
}

// loader drives one load run.
type loader struct {
	base    string
	client  *http.Client
	mix     []weightedSpec
	tenants []tenant.Weight // optional: weighted tenant draw per submission
	workers int
	total   int           // stop after this many submissions (0: unbounded)
	dur     time.Duration // stop after this long (0: unbounded; one of total/dur must bound)
	poll    time.Duration
	seed    int64

	mu         sync.Mutex
	requests   int
	accepted   int
	shed       int
	errors     int
	jobsDone   int
	jobsFailed int
	cached     int
	coalesced  int
	latencies  []float64
	admissions []float64
	traceIDs   []string
	tallies    map[string]*tenantTally
}

// tally returns (creating if needed) the tenant's counter block.
// Callers must hold l.mu.
func (l *loader) tally(key string) *tenantTally {
	if l.tallies == nil {
		l.tallies = map[string]*tenantTally{}
	}
	t, ok := l.tallies[key]
	if !ok {
		t = &tenantTally{}
		l.tallies[key] = t
	}
	return t
}

// take reserves one submission slot, false once the quota is gone.
func (l *loader) take() bool {
	if l.total <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.requests >= l.total {
		return false
	}
	l.requests++
	return true
}

func (l *loader) run(ctx context.Context) {
	if l.dur > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, l.dur)
		defer cancel()
	}
	var wg sync.WaitGroup
	for w := 0; w < l.workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil && l.take() {
				spec := pick(l.mix, r)
				if len(l.tenants) > 0 {
					spec.Tenant = pickTenant(l.tenants, r)
				}
				l.once(ctx, spec)
			}
		}(l.seed + int64(w))
	}
	wg.Wait()
}

// once submits one job and follows it to a terminal state. A 200 is a
// cache serve: the body is already a terminal job, so there is nothing
// to poll — its latency is the admission round-trip itself. A 202 with
// coalesced:true attached to an in-flight duplicate; it is awaited
// like any other accepted job (the shared job's terminal state is this
// submission's terminal state too).
func (l *loader) once(ctx context.Context, spec jobs.Spec) {
	key := tenant.Key(spec.Tenant)
	perTenant := len(l.tenants) > 0
	fail := func() {
		l.count(func() {
			l.errors++
			if perTenant {
				l.tally(key).errors++
			}
		})
	}
	body, err := json.Marshal(spec)
	if err != nil {
		fail()
		return
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, "POST", l.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		fail()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			fail()
		}
		return
	}
	admitted := time.Since(start)
	var job jobs.Job
	decErr := json.NewDecoder(resp.Body).Decode(&job)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		l.count(func() {
			l.shed++
			if perTenant {
				l.tally(key).shed++
			}
		})
		return
	case resp.StatusCode == http.StatusOK && decErr == nil && job.Cached:
		elapsed := time.Since(start)
		l.count(func() {
			l.accepted++
			l.cached++
			l.admissions = append(l.admissions, admitted.Seconds())
			l.latencies = append(l.latencies, elapsed.Seconds())
			done := job.State == jobs.StateDone
			if done {
				l.jobsDone++
			} else {
				l.jobsFailed++
			}
			if perTenant {
				t := l.tally(key)
				t.accepted++
				t.cached++
				t.latencies = append(t.latencies, elapsed.Seconds())
				if done {
					t.jobsDone++
				} else {
					t.jobsFailed++
				}
			}
		})
		return
	case resp.StatusCode != http.StatusAccepted || decErr != nil:
		fail()
		return
	}
	l.count(func() {
		l.accepted++
		l.admissions = append(l.admissions, admitted.Seconds())
		if perTenant {
			l.tally(key).accepted++
		}
		if job.Coalesced {
			l.coalesced++
			if perTenant {
				l.tally(key).coalesced++
			}
		}
	})

	final, err := l.await(ctx, job.ID)
	if err != nil {
		if ctx.Err() == nil {
			fail()
		}
		return
	}
	elapsed := time.Since(start)
	l.count(func() {
		l.latencies = append(l.latencies, elapsed.Seconds())
		done := final.State == jobs.StateDone
		if done {
			l.jobsDone++
		} else {
			l.jobsFailed++
		}
		if final.TraceID != "" {
			l.traceIDs = append(l.traceIDs, final.TraceID)
		}
		if perTenant {
			t := l.tally(key)
			t.latencies = append(t.latencies, elapsed.Seconds())
			t.queueWaits = append(t.queueWaits, final.QueueWaitSeconds)
			if done {
				t.jobsDone++
			} else {
				t.jobsFailed++
			}
		}
	})
}

// await polls GET /jobs/{id} until the job is terminal.
func (l *loader) await(ctx context.Context, id string) (jobs.Job, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", l.base+"/jobs/"+id, nil)
		if err != nil {
			return jobs.Job{}, err
		}
		resp, err := l.client.Do(req)
		if err != nil {
			return jobs.Job{}, err
		}
		var job jobs.Job
		decErr := json.NewDecoder(resp.Body).Decode(&job)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			return jobs.Job{}, fmt.Errorf("fiberload: GET /jobs/%s: status %d, %v", id, resp.StatusCode, decErr)
		}
		if job.State.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return jobs.Job{}, ctx.Err()
		case <-time.After(l.poll):
		}
	}
}

func (l *loader) count(f func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f()
}

// sampleTraces fetches up to limit job traces and attributes their
// wall time to lifecycle phases. Traces already evicted from the ring
// are skipped silently — the sample shrinks, it does not fail.
func (l *loader) sampleTraces(ctx context.Context, limit int) TraceSplit {
	l.mu.Lock()
	ids := append([]string(nil), l.traceIDs...)
	l.mu.Unlock()
	if limit > 0 && len(ids) > limit {
		// Newest last: sample the tail so the traces are least likely
		// to have been evicted.
		ids = ids[len(ids)-limit:]
	}
	var split TraceSplit
	for _, id := range ids {
		req, err := http.NewRequestWithContext(ctx, "GET", l.base+"/traces/"+id, nil)
		if err != nil {
			continue
		}
		resp, err := l.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		tr, err := obs.ParseTrace(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		split.Sampled++
		split.QueueWaitSeconds += tr.SpanSeconds("queue-wait")
		run := tr.SpanSeconds("run")
		if run == 0 {
			run = tr.SpanSeconds("attempt")
		}
		split.RunSeconds += run
		split.BackoffSeconds += tr.SpanSeconds("backoff")
		split.JournalSeconds += tr.SpanSeconds("journal-append")
	}
	if split.Sampled > 0 {
		n := float64(split.Sampled)
		split.QueueWaitSeconds /= n
		split.RunSeconds /= n
		split.BackoffSeconds /= n
		split.JournalSeconds /= n
	}
	return split
}

// report assembles the final numbers.
func (l *loader) report(split TraceSplit) Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.accepted + l.shed + l.errors
	rep := Report{
		Schema:     ReportSchema,
		Requests:   total,
		Accepted:   l.accepted,
		Shed429:    l.shed,
		Errors:     l.errors,
		JobsDone:   l.jobsDone,
		JobsFailed: l.jobsFailed,
		Cached:     l.cached,
		Coalesced:  l.coalesced,
		Latency:    percentiles(l.latencies),
		Admission:  percentiles(l.admissions),
		Split:      split,
	}
	if total > 0 {
		rep.ErrorRate = float64(l.errors) / float64(total)
		rep.ShedRate = float64(l.shed) / float64(total)
	}
	if len(l.tallies) > 0 {
		rep.Tenants = make(map[string]TenantReport, len(l.tallies))
		for name, t := range l.tallies {
			tr := TenantReport{
				Requests:   t.accepted + t.shed + t.errors,
				Accepted:   t.accepted,
				Shed429:    t.shed,
				Errors:     t.errors,
				JobsDone:   t.jobsDone,
				JobsFailed: t.jobsFailed,
				Cached:     t.cached,
				Coalesced:  t.coalesced,
				Latency:    percentiles(t.latencies),
				QueueWait:  percentiles(t.queueWaits),
			}
			if tr.Requests > 0 {
				tr.ShedRate = float64(t.shed) / float64(tr.Requests)
				tr.ErrorRate = float64(t.errors) / float64(tr.Requests)
			}
			rep.Tenants[name] = tr
		}
	}
	return rep
}

// WriteText renders the report for humans, leading with the headline
// percentiles and closing with the latency attribution that answers
// "is it queueing or running".
func (r Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "requests %d: %d accepted, %d shed (429), %d errors (error rate %.2f%%, shed rate %.2f%%)\n",
		r.Requests, r.Accepted, r.Shed429, r.Errors, 100*r.ErrorRate, 100*r.ShedRate)
	fmt.Fprintf(w, "jobs: %d done, %d failed (%d cached, %d coalesced)\n",
		r.JobsDone, r.JobsFailed, r.Cached, r.Coalesced)
	fmt.Fprintf(w, "latency  (submit->terminal): p50 %.4fs  p95 %.4fs  p99 %.4fs  mean %.4fs  max %.4fs\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Mean, r.Latency.Max)
	fmt.Fprintf(w, "admission (POST round-trip): p50 %.4fs  p95 %.4fs  p99 %.4fs\n",
		r.Admission.P50, r.Admission.P95, r.Admission.P99)
	if r.Split.Sampled > 0 {
		fmt.Fprintf(w, "trace split over %d traces (mean per job): queue-wait %.4fs, run %.4fs, backoff %.4fs, journal %.4fs\n",
			r.Split.Sampled, r.Split.QueueWaitSeconds, r.Split.RunSeconds,
			r.Split.BackoffSeconds, r.Split.JournalSeconds)
	} else {
		fmt.Fprintln(w, "trace split: no traces sampled (tracing off or ring evicted)")
	}
	if r.Runtime != nil {
		fmt.Fprintf(w, "server runtime over the run: %d GC cycles, %.4fs GC pause, %.1f MiB allocated; heap live %.1f MiB, %d goroutines, sched-latency p99 %.6fs\n",
			r.Runtime.GCCycles, r.Runtime.GCPauseSeconds, float64(r.Runtime.AllocBytes)/(1<<20),
			float64(r.Runtime.HeapLiveBytes)/(1<<20), r.Runtime.Goroutines, r.Runtime.SchedLatencyP99Seconds)
	}
	if len(r.Tenants) > 0 {
		names := make([]string, 0, len(r.Tenants))
		for name := range r.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := r.Tenants[name]
			fmt.Fprintf(w, "tenant %-10s %4d requests: %d accepted, %d shed (%.2f%%), %d errors, %d cached, %d coalesced; latency p50 %.4fs p99 %.4fs; queue-wait p50 %.4fs p99 %.4fs\n",
				name, t.Requests, t.Accepted, t.Shed429, 100*t.ShedRate, t.Errors,
				t.Cached, t.Coalesced, t.Latency.P50, t.Latency.P99,
				t.QueueWait.P50, t.QueueWait.P99)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
