package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("stream:3, mvmc ,ffvc:2", "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].weight != 3 || mix[1].weight != 1 || mix[2].spec.App != "ffvc" {
		t.Errorf("mix = %+v", mix)
	}
	if mix[0].spec.Size != "test" {
		t.Errorf("size not applied: %+v", mix[0].spec)
	}
	for _, bad := range []string{"", "stream:0", "stream:-1", "stream:x"} {
		if _, err := parseMix(bad, "test"); err == nil {
			t.Errorf("mix %q parsed", bad)
		}
	}
}

func TestPercentiles(t *testing.T) {
	var samples []float64
	for i := 1; i <= 100; i++ {
		samples = append(samples, float64(i))
	}
	p := percentiles(samples)
	if p.P50 != 50 || p.P95 != 95 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles = %+v", p)
	}
	if math.Abs(p.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %g", p.Mean)
	}
	if got := percentiles(nil); got != (Percentiles{}) {
		t.Errorf("empty percentiles = %+v", got)
	}
	one := percentiles([]float64{0.25})
	if one.P50 != 0.25 || one.P99 != 0.25 {
		t.Errorf("single-sample percentiles = %+v", one)
	}
}

// manualClock only moves when advance is called, so the stub can build
// traces with exact span durations.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// stubFiberd fakes the three endpoints fiberload touches. Every job
// terminates done after `lag` status polls; shedEvery>0 makes every
// N-th submission a 429. Each accepted job gets a real finalized trace
// with queue-wait exactly 2ms and run exactly 3ms under the manual
// clock.
type stubFiberd struct {
	mu        sync.Mutex
	clock     *manualClock
	tracer    *obs.Tracer
	jobs      map[string]int    // id -> polls remaining until terminal
	traces    map[string]string // id -> trace id
	submits   int
	lag       int
	shedEvery int
}

func newStubFiberd(t *testing.T, lag, shedEvery int) *stubFiberd {
	t.Helper()
	clock := &manualClock{t: time.Unix(0, 0)}
	tracer, err := obs.NewTracer(obs.TracerConfig{Now: clock.now, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return &stubFiberd{clock: clock, tracer: tracer, jobs: map[string]int{},
		traces: map[string]string{}, lag: lag, shedEvery: shedEvery}
}

func (f *stubFiberd) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.submits++
		if f.shedEvery > 0 && f.submits%f.shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		var spec jobs.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.App == "" {
			http.Error(w, "bad spec", http.StatusBadRequest)
			return
		}
		id := fmt.Sprintf("job-%06d", f.submits)
		root := f.tracer.StartTrace("job", obs.SpanContext{})
		qw := root.StartChild("queue-wait")
		f.clock.advance(2 * time.Millisecond)
		qw.End()
		run := root.StartChild("run")
		f.clock.advance(3 * time.Millisecond)
		run.End()
		root.End()
		f.jobs[id] = f.lag
		f.traces[id] = root.Context().TraceID.String()
		job := jobs.Job{ID: id, Spec: spec, State: jobs.StateAccepted,
			TraceID: f.traces[id]}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(job)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		id := r.PathValue("id")
		left, ok := f.jobs[id]
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		job := jobs.Job{ID: id, State: jobs.StateRunning, TraceID: f.traces[id]}
		if left <= 0 {
			job.State = jobs.StateDone
		} else {
			f.jobs[id] = left - 1
		}
		json.NewEncoder(w).Encode(job)
	})
	mux.HandleFunc("GET /traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		tr, ok := f.tracer.Trace(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such trace", http.StatusNotFound)
			return
		}
		tr.Encode(w)
	})
	return mux
}

func TestLoaderEndToEnd(t *testing.T) {
	stub := newStubFiberd(t, 2, 0)
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	l := &loader{
		base:    ts.URL,
		client:  ts.Client(),
		mix:     []weightedSpec{{spec: jobs.Spec{App: "stream", Size: "test"}, weight: 1}},
		workers: 4,
		total:   20,
		poll:    time.Millisecond,
		seed:    1,
	}
	l.run(context.Background())
	split := l.sampleTraces(context.Background(), 10)
	rep := l.report(split)

	if rep.Accepted != 20 || rep.Errors != 0 || rep.Shed429 != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.JobsDone != 20 || rep.JobsFailed != 0 {
		t.Errorf("jobs = %d done %d failed", rep.JobsDone, rep.JobsFailed)
	}
	if rep.Latency.P99 <= 0 || rep.Latency.P50 > rep.Latency.Max {
		t.Errorf("latency = %+v", rep.Latency)
	}
	if rep.Admission.P99 <= 0 {
		t.Errorf("admission = %+v", rep.Admission)
	}
	// The split is the acceptance-criterion number: fiberload must
	// attribute latency to queue wait vs run from the traces. The stub
	// builds every trace with queue-wait=2ms and run=3ms exactly.
	if rep.Split.Sampled != 10 {
		t.Fatalf("sampled = %d, want 10", rep.Split.Sampled)
	}
	if math.Abs(rep.Split.QueueWaitSeconds-0.002) > 1e-9 {
		t.Errorf("queue wait = %gs, want 0.002", rep.Split.QueueWaitSeconds)
	}
	if math.Abs(rep.Split.RunSeconds-0.003) > 1e-9 {
		t.Errorf("run = %gs, want 0.003", rep.Split.RunSeconds)
	}

	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"20 accepted", "queue-wait 0.0020s", "run 0.0030s", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestLoaderCountsShed(t *testing.T) {
	stub := newStubFiberd(t, 0, 3) // every 3rd submission is shed
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	l := &loader{
		base:    ts.URL,
		client:  ts.Client(),
		mix:     []weightedSpec{{spec: jobs.Spec{App: "stream"}, weight: 1}},
		workers: 2,
		total:   9,
		poll:    time.Millisecond,
		seed:    1,
	}
	l.run(context.Background())
	rep := l.report(TraceSplit{})
	if rep.Shed429 != 3 || rep.Accepted != 6 {
		t.Errorf("shed/accepted = %d/%d, want 3/6", rep.Shed429, rep.Accepted)
	}
	if math.Abs(rep.ShedRate-1.0/3.0) > 1e-9 {
		t.Errorf("shed rate = %g", rep.ShedRate)
	}
}

func TestVerdictGates(t *testing.T) {
	ok := Report{Accepted: 10, Latency: Percentiles{P99: 0.5}}
	if code := verdict(ok, time.Second, 0, os.Stderr); code != 0 {
		t.Errorf("passing report failed: %d", code)
	}
	if code := verdict(Report{Accepted: 0}, 0, 0, os.Stderr); code != 1 {
		t.Error("zero-accepted run passed")
	}
	if code := verdict(Report{Accepted: 5, Errors: 2}, 0, 1, os.Stderr); code != 1 {
		t.Error("error overflow passed")
	}
	if code := verdict(Report{Accepted: 5, Errors: 2}, 0, 2, os.Stderr); code != 0 {
		t.Error("tolerated errors failed")
	}
	slow := Report{Accepted: 10, Latency: Percentiles{P99: 2.5}}
	if code := verdict(slow, time.Second, 0, os.Stderr); code != 1 {
		t.Error("slow p99 passed")
	}
}
