package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
	"fibersim/internal/tenant"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("stream:3, mvmc ,ffvc:2", "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].weight != 3 || mix[1].weight != 1 || mix[2].spec.App != "ffvc" {
		t.Errorf("mix = %+v", mix)
	}
	if mix[0].spec.Size != "test" {
		t.Errorf("size not applied: %+v", mix[0].spec)
	}
	for _, bad := range []string{"", "stream:0", "stream:-1", "stream:x"} {
		if _, err := parseMix(bad, "test"); err == nil {
			t.Errorf("mix %q parsed", bad)
		}
	}
}

func TestPercentiles(t *testing.T) {
	var samples []float64
	for i := 1; i <= 100; i++ {
		samples = append(samples, float64(i))
	}
	p := percentiles(samples)
	if p.P50 != 50 || p.P95 != 95 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles = %+v", p)
	}
	if math.Abs(p.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %g", p.Mean)
	}
	if got := percentiles(nil); got != (Percentiles{}) {
		t.Errorf("empty percentiles = %+v", got)
	}
	one := percentiles([]float64{0.25})
	if one.P50 != 0.25 || one.P99 != 0.25 {
		t.Errorf("single-sample percentiles = %+v", one)
	}
}

// manualClock only moves when advance is called, so the stub can build
// traces with exact span durations.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// stubFiberd fakes the three endpoints fiberload touches. Every job
// terminates done after `lag` status polls; shedEvery>0 makes every
// N-th submission a 429. Each accepted job gets a real finalized trace
// with queue-wait exactly 2ms and run exactly 3ms under the manual
// clock, and reports QueueWaitSeconds of exactly 4ms once terminal.
// cachedEvery>0 answers every N-th submission 200 from a pretend
// result cache; coalesceEvery>0 attaches every N-th submission to the
// most recently accepted job with coalesced:true.
type stubFiberd struct {
	mu            sync.Mutex
	clock         *manualClock
	tracer        *obs.Tracer
	jobs          map[string]int    // id -> polls remaining until terminal
	traces        map[string]string // id -> trace id
	submits       int
	lag           int
	shedEvery     int
	cachedEvery   int
	coalesceEvery int
	lastID        string
}

func newStubFiberd(t *testing.T, lag, shedEvery int) *stubFiberd {
	t.Helper()
	clock := &manualClock{t: time.Unix(0, 0)}
	tracer, err := obs.NewTracer(obs.TracerConfig{Now: clock.now, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return &stubFiberd{clock: clock, tracer: tracer, jobs: map[string]int{},
		traces: map[string]string{}, lag: lag, shedEvery: shedEvery}
}

func (f *stubFiberd) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.submits++
		if f.shedEvery > 0 && f.submits%f.shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		var spec jobs.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.App == "" {
			http.Error(w, "bad spec", http.StatusBadRequest)
			return
		}
		if f.cachedEvery > 0 && f.submits%f.cachedEvery == 0 {
			job := jobs.Job{ID: fmt.Sprintf("cached-%06d", f.submits), Spec: spec,
				State: jobs.StateDone, Cached: true,
				Result: &jobs.Result{TimeSeconds: 1.25, GFlops: 5, Verified: true}}
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(job)
			return
		}
		if f.coalesceEvery > 0 && f.submits%f.coalesceEvery == 0 && f.lastID != "" {
			job := jobs.Job{ID: f.lastID, Spec: spec,
				State: jobs.StateRunning, Coalesced: true}
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(job)
			return
		}
		id := fmt.Sprintf("job-%06d", f.submits)
		root := f.tracer.StartTrace("job", obs.SpanContext{})
		qw := root.StartChild("queue-wait")
		f.clock.advance(2 * time.Millisecond)
		qw.End()
		run := root.StartChild("run")
		f.clock.advance(3 * time.Millisecond)
		run.End()
		root.End()
		f.jobs[id] = f.lag
		f.traces[id] = root.Context().TraceID.String()
		f.lastID = id
		job := jobs.Job{ID: id, Spec: spec, State: jobs.StateAccepted,
			TraceID: f.traces[id]}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(job)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		id := r.PathValue("id")
		left, ok := f.jobs[id]
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		job := jobs.Job{ID: id, State: jobs.StateRunning, TraceID: f.traces[id]}
		if left <= 0 {
			job.State = jobs.StateDone
			job.QueueWaitSeconds = 0.004
		} else {
			f.jobs[id] = left - 1
		}
		json.NewEncoder(w).Encode(job)
	})
	mux.HandleFunc("GET /traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		tr, ok := f.tracer.Trace(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such trace", http.StatusNotFound)
			return
		}
		tr.Encode(w)
	})
	return mux
}

func TestLoaderEndToEnd(t *testing.T) {
	stub := newStubFiberd(t, 2, 0)
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	l := &loader{
		base:    ts.URL,
		client:  ts.Client(),
		mix:     []weightedSpec{{spec: jobs.Spec{App: "stream", Size: "test"}, weight: 1}},
		workers: 4,
		total:   20,
		poll:    time.Millisecond,
		seed:    1,
	}
	l.run(context.Background())
	split := l.sampleTraces(context.Background(), 10)
	rep := l.report(split)

	if rep.Accepted != 20 || rep.Errors != 0 || rep.Shed429 != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.JobsDone != 20 || rep.JobsFailed != 0 {
		t.Errorf("jobs = %d done %d failed", rep.JobsDone, rep.JobsFailed)
	}
	if rep.Latency.P99 <= 0 || rep.Latency.P50 > rep.Latency.Max {
		t.Errorf("latency = %+v", rep.Latency)
	}
	if rep.Admission.P99 <= 0 {
		t.Errorf("admission = %+v", rep.Admission)
	}
	// The split is the acceptance-criterion number: fiberload must
	// attribute latency to queue wait vs run from the traces. The stub
	// builds every trace with queue-wait=2ms and run=3ms exactly.
	if rep.Split.Sampled != 10 {
		t.Fatalf("sampled = %d, want 10", rep.Split.Sampled)
	}
	if math.Abs(rep.Split.QueueWaitSeconds-0.002) > 1e-9 {
		t.Errorf("queue wait = %gs, want 0.002", rep.Split.QueueWaitSeconds)
	}
	if math.Abs(rep.Split.RunSeconds-0.003) > 1e-9 {
		t.Errorf("run = %gs, want 0.003", rep.Split.RunSeconds)
	}

	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"20 accepted", "queue-wait 0.0020s", "run 0.0030s", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestLoaderCountsShed(t *testing.T) {
	stub := newStubFiberd(t, 0, 3) // every 3rd submission is shed
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	l := &loader{
		base:    ts.URL,
		client:  ts.Client(),
		mix:     []weightedSpec{{spec: jobs.Spec{App: "stream"}, weight: 1}},
		workers: 2,
		total:   9,
		poll:    time.Millisecond,
		seed:    1,
	}
	l.run(context.Background())
	rep := l.report(TraceSplit{})
	if rep.Shed429 != 3 || rep.Accepted != 6 {
		t.Errorf("shed/accepted = %d/%d, want 3/6", rep.Shed429, rep.Accepted)
	}
	if math.Abs(rep.ShedRate-1.0/3.0) > 1e-9 {
		t.Errorf("shed rate = %g", rep.ShedRate)
	}
}

func TestLoaderTenantBreakdown(t *testing.T) {
	stub := newStubFiberd(t, 1, 0)
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	l := &loader{
		base:   ts.URL,
		client: ts.Client(),
		mix:    []weightedSpec{{spec: jobs.Spec{App: "stream", Size: "test"}, weight: 1}},
		tenants: []tenant.Weight{
			{Name: "greedy", Weight: 3},
			{Name: "paced", Weight: 1},
		},
		workers: 4,
		total:   40,
		poll:    time.Millisecond,
		seed:    1,
	}
	l.run(context.Background())
	rep := l.report(TraceSplit{})

	if rep.Accepted != 40 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant breakdown = %+v, want greedy and paced", rep.Tenants)
	}
	greedy, paced := rep.Tenants["greedy"], rep.Tenants["paced"]
	if greedy.Requests+paced.Requests != rep.Requests {
		t.Errorf("tenant requests %d+%d != total %d",
			greedy.Requests, paced.Requests, rep.Requests)
	}
	if greedy.JobsDone+paced.JobsDone != rep.JobsDone {
		t.Errorf("tenant done %d+%d != total %d",
			greedy.JobsDone, paced.JobsDone, rep.JobsDone)
	}
	// A 3:1 weighted draw over 40 submissions must favor greedy.
	if greedy.Requests <= paced.Requests {
		t.Errorf("greedy %d <= paced %d despite 3:1 weights",
			greedy.Requests, paced.Requests)
	}
	// Queue wait comes from the terminal job's own accounting, which
	// the stub pins at exactly 4ms.
	for name, tr := range rep.Tenants {
		if math.Abs(tr.QueueWait.P50-0.004) > 1e-9 {
			t.Errorf("tenant %s queue-wait p50 = %g, want 0.004", name, tr.QueueWait.P50)
		}
	}

	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"tenant greedy", "tenant paced", "queue-wait p50 0.0040s"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestLoaderCountsCachedAndCoalesced(t *testing.T) {
	stub := newStubFiberd(t, 0, 0)
	stub.cachedEvery = 2 // submissions 2, 4, 6 served 200 from cache
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	l := &loader{
		base:    ts.URL,
		client:  ts.Client(),
		mix:     []weightedSpec{{spec: jobs.Spec{App: "stream"}, weight: 1}},
		tenants: []tenant.Weight{{Name: "alice", Weight: 1}},
		workers: 1,
		total:   6,
		poll:    time.Millisecond,
		seed:    1,
	}
	l.run(context.Background())
	rep := l.report(TraceSplit{})
	if rep.Accepted != 6 || rep.Cached != 3 || rep.JobsDone != 6 {
		t.Errorf("cached run: accepted/cached/done = %d/%d/%d, want 6/3/6",
			rep.Accepted, rep.Cached, rep.JobsDone)
	}
	if got := rep.Tenants["alice"]; got.Cached != 3 || got.JobsDone != 6 {
		t.Errorf("alice tally = %+v, want 3 cached of 6 done", got)
	}

	stub2 := newStubFiberd(t, 0, 0)
	stub2.coalesceEvery = 3 // submissions 3 and 6 attach to the last job
	ts2 := httptest.NewServer(stub2.handler())
	defer ts2.Close()

	l2 := &loader{
		base:    ts2.URL,
		client:  ts2.Client(),
		mix:     []weightedSpec{{spec: jobs.Spec{App: "stream"}, weight: 1}},
		workers: 1,
		total:   6,
		poll:    time.Millisecond,
		seed:    1,
	}
	l2.run(context.Background())
	rep2 := l2.report(TraceSplit{})
	if rep2.Accepted != 6 || rep2.Coalesced != 2 || rep2.JobsDone != 6 {
		t.Errorf("coalesced run: accepted/coalesced/done = %d/%d/%d, want 6/2/6",
			rep2.Accepted, rep2.Coalesced, rep2.JobsDone)
	}
}

func TestVerdictGates(t *testing.T) {
	ok := Report{Accepted: 10, Latency: Percentiles{P99: 0.5}}
	if code := verdict(ok, time.Second, 0, os.Stderr); code != 0 {
		t.Errorf("passing report failed: %d", code)
	}
	if code := verdict(Report{Accepted: 0}, 0, 0, os.Stderr); code != 1 {
		t.Error("zero-accepted run passed")
	}
	if code := verdict(Report{Accepted: 5, Errors: 2}, 0, 1, os.Stderr); code != 1 {
		t.Error("error overflow passed")
	}
	if code := verdict(Report{Accepted: 5, Errors: 2}, 0, 2, os.Stderr); code != 0 {
		t.Error("tolerated errors failed")
	}
	slow := Report{Accepted: 10, Latency: Percentiles{P99: 2.5}}
	if code := verdict(slow, time.Second, 0, os.Stderr); code != 1 {
		t.Error("slow p99 passed")
	}
}

func TestFetchRuntimeAndDiff(t *testing.T) {
	var calls int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/runtime" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		json.NewEncoder(w).Encode(obs.RuntimeSnapshot{
			SampledAt:              "2023-11-14T22:13:20Z",
			HeapLiveBytes:          uint64(n) << 20,
			Goroutines:             int64(4 + n),
			GCCycles:               uint64(10 * n),
			AllocBytes:             uint64(1000 * n),
			GCPauseSeconds:         0.001 * float64(n),
			SchedLatencyP99Seconds: 1e-6,
		})
	}))
	defer ts.Close()

	l := &loader{base: ts.URL, client: ts.Client()}
	before, ok := l.fetchRuntime(context.Background())
	if !ok {
		t.Fatal("fetchRuntime failed against a serving endpoint")
	}
	after, ok := l.fetchRuntime(context.Background())
	if !ok {
		t.Fatal("second fetchRuntime failed")
	}
	d := diffRuntime(before, after)
	if d.GCCycles != 10 || d.AllocBytes != 1000 {
		t.Errorf("delta gc/alloc = %d/%d, want 10/1000", d.GCCycles, d.AllocBytes)
	}
	if math.Abs(d.GCPauseSeconds-0.001) > 1e-12 {
		t.Errorf("delta pause = %g, want 0.001", d.GCPauseSeconds)
	}
	if d.HeapLiveBytes != 2<<20 || d.Goroutines != 6 {
		t.Errorf("end state heap/goroutines = %d/%d, want %d/6", d.HeapLiveBytes, d.Goroutines, 2<<20)
	}

	// A fiberd without -runtime-metrics answers 404; the loader shrugs.
	l404 := &loader{base: ts.URL + "/missing", client: ts.Client()}
	if _, ok := l404.fetchRuntime(context.Background()); ok {
		t.Error("fetchRuntime reported ok against a 404 endpoint")
	}
}

func TestDiffRuntimeCounterReset(t *testing.T) {
	// A server restart mid-run resets the cumulative counters; the diff
	// restarts the baseline at the after value instead of going negative.
	before := obs.RuntimeSnapshot{GCCycles: 100, AllocBytes: 5000, GCPauseSeconds: 3}
	after := obs.RuntimeSnapshot{GCCycles: 13, AllocBytes: 1500, GCPauseSeconds: 0.75}
	d := diffRuntime(before, after)
	if d.GCCycles != 13 || d.AllocBytes != 1500 {
		t.Errorf("reset delta gc/alloc = %d/%d, want 13/1500", d.GCCycles, d.AllocBytes)
	}
	if d.GCPauseSeconds != 0 {
		t.Errorf("reset delta pause = %g, want 0 (negative clamped)", d.GCPauseSeconds)
	}
}
