// Command fiberload drives a running fiberd with concurrent job
// submissions and reports the service's latency behavior: percentiles
// of submit-to-terminal wall time, error and shed (429) rates, and —
// via the service traces fiberd records — the split of each job's life
// between queue wait, execution, retry backoff and journal writes.
//
//	fiberload -addr http://127.0.0.1:8080 -c 8 -n 200 -mix stream:3,mvmc:1
//
// The -tenants flag tags each submission with a tenant drawn by
// weight ("greedy:4,paced" or a plain count like "3") and adds a
// per-tenant breakdown to the report — shed rate, latency and
// queue-wait percentiles per tenant — which is how a noisy-neighbor
// run shows whether fair queueing actually isolated the victim.
//
// The -max-p99 flag turns the run into a pass/fail gate for CI: the
// exit code is non-zero when the measured job-latency p99 exceeds the
// bound, when nothing was accepted, or when any request errored and
// -max-errors is 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fibersim/internal/tenant"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "fiberd base URL")
	workers := flag.Int("c", 4, "concurrent submitters")
	total := flag.Int("n", 100, "total submissions across all workers (0: unbounded, needs -duration)")
	duration := flag.Duration("duration", 0, "stop after this long (0: run until -n submissions)")
	mixFlag := flag.String("mix", "stream", "spec mix: comma-separated app[:weight] cells")
	tenantsFlag := flag.String("tenants", "", "tenant mix: name[:weight] cells or a plain count (e.g. greedy:4,paced or 3); empty: untenanted")
	size := flag.String("size", "test", "data set for every spec in the mix")
	poll := flag.Duration("poll", 10*time.Millisecond, "job status poll interval")
	seed := flag.Int64("seed", 1, "RNG seed for the spec mix draw")
	traceSample := flag.Int("trace-sample", 50, "job traces to fetch for the latency split (0: skip)")
	jsonOut := flag.Bool("json", false, "emit the report as fibersim/load-report/v1 JSON")
	maxP99 := flag.Duration("max-p99", 0, "fail (exit 1) when job-latency p99 exceeds this bound (0: off)")
	maxErrors := flag.Int("max-errors", 0, "tolerated request errors before the run fails")
	flag.Parse()

	if *total <= 0 && *duration <= 0 {
		fmt.Fprintln(os.Stderr, "fiberload: either -n or -duration must bound the run")
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag, *size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var tenants []tenant.Weight
	if *tenantsFlag != "" {
		tenants, err = tenant.ParseWeights(*tenantsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiberload:", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	l := &loader{
		base:    *addr,
		client:  &http.Client{Timeout: 30 * time.Second},
		mix:     mix,
		tenants: tenants,
		workers: *workers,
		total:   *total,
		dur:     *duration,
		poll:    *poll,
		seed:    *seed,
	}
	before, haveBefore := l.fetchRuntime(ctx)
	l.run(ctx)
	var split TraceSplit
	if *traceSample > 0 {
		split = l.sampleTraces(ctx, *traceSample)
	}
	rep := l.report(split)
	if haveBefore {
		if after, ok := l.fetchRuntime(ctx); ok {
			rep.Runtime = diffRuntime(before, after)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "fiberload:", err)
			os.Exit(1)
		}
	} else if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fiberload:", err)
		os.Exit(1)
	}
	os.Exit(verdict(rep, *maxP99, *maxErrors, os.Stderr))
}

// verdict applies the CI gates to the report and returns the exit
// code, explaining every failure on stderr.
func verdict(rep Report, maxP99 time.Duration, maxErrors int, stderr *os.File) int {
	code := 0
	if rep.Accepted == 0 {
		fmt.Fprintln(stderr, "fiberload: FAIL: no submission was accepted")
		code = 1
	}
	if rep.Errors > maxErrors {
		fmt.Fprintf(stderr, "fiberload: FAIL: %d request errors (tolerated %d)\n", rep.Errors, maxErrors)
		code = 1
	}
	if maxP99 > 0 && rep.Latency.P99 > maxP99.Seconds() {
		fmt.Fprintf(stderr, "fiberload: FAIL: job latency p99 %.4fs exceeds bound %s\n",
			rep.Latency.P99, maxP99)
		code = 1
	}
	return code
}
