// Command fiberperf is the continuous-benchmarking front end: it
// records benchmark trajectories, gates revisions against the stored
// baseline with robust statistics, and diffs run manifests.
//
//	fiberperf record -trajectory BENCH_fibersim.json -size small
//	fiberperf check  -trajectory BENCH_fibersim.json -size small
//	fiberperf diff   old.json new.json
//
// record runs the standard grid (every suite app plus the STREAM
// proxy, three decompositions, as-is and tuned compilers) and appends
// one JSONL record per cell. check reruns the same grid at HEAD and
// compares each cell against the median/MAD of its baseline window,
// exiting non-zero on regression — because the simulator is
// deterministic in virtual time, an unchanged tree scores z = 0 and
// any shift beyond the relative floor is a real model change.
//
// At -size test a few apps cannot decompose 48 ranks (their smallest
// grids have only 16 layers); restrict -apps or use small, where the
// full grid runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"fibersim/internal/harness"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/obs"
	"fibersim/internal/perfdb"
	"fibersim/internal/vtime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage: fiberperf <record|check|diff> [flags]

  record  run the standard benchmark grid and append to the trajectory
  check   rerun the grid and gate against the stored baseline
  diff    structural diff of two run manifests

Run 'fiberperf <subcommand> -h' for flags.`)
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "record":
		return runRecord(args[1:], stdout, stderr)
	case "check":
		return runCheck(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "fiberperf: unknown subcommand %q\n", args[0])
		return usage(stderr)
	}
}

// gridFlags are the knobs record and check share: which cells to run
// and which trajectory file to run them against.
type gridFlags struct {
	trajectory string
	size       string
	apps       string
	rev        string
}

func (g *gridFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&g.trajectory, "trajectory", perfdb.DefaultPath, "trajectory file (JSONL)")
	fs.StringVar(&g.size, "size", "small", "problem size: test, small, medium")
	fs.StringVar(&g.apps, "apps", "", "comma-separated app filter (default: full grid)")
	fs.StringVar(&g.rev, "rev", "", "revision tag for new records (default: git rev-parse)")
}

// resolve parses the size, applies the app filter, and fills in the
// revision from git when none was given.
func (g *gridFlags) resolve() ([]harness.BenchConfig, common.Size, error) {
	size, err := common.ParseSize(g.size)
	if err != nil {
		return nil, 0, err
	}
	grid, err := harness.FilterBenchGrid(harness.BenchGrid(), g.apps)
	if err != nil {
		return nil, 0, err
	}
	if g.rev == "" {
		g.rev = gitRev()
	}
	return grid, size, nil
}

// gitRev asks git for the short HEAD hash; a trajectory without
// revisions is still useful, so failure degrades to "unknown".
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func runRecord(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fiberperf record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var g gridFlags
	g.register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	grid, size, err := g.resolve()
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf record: %v\n", err)
		return 2
	}
	traj, err := perfdb.Load(g.trajectory)
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf record: %v\n", err)
		return 1
	}
	recs, err := harness.RunBenchGrid(grid, size, g.rev, time.Now, func(r perfdb.Record) {
		fmt.Fprintf(stdout, "recorded %-40s %10s  %8.1f Gflop/s  wall %8.3fs\n",
			r.Key(), vtime.Format(r.TimeSeconds), r.GFlops, r.WallSeconds)
	})
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf record: %v\n", err)
		return 1
	}
	if err := traj.Append(recs...); err != nil {
		fmt.Fprintf(stderr, "fiberperf record: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "appended %d records (rev %s) to %s; %d keys total\n",
		len(recs), g.rev, g.trajectory, len(traj.Keys()))
	return 0
}

func runCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fiberperf check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var g gridFlags
	g.register(fs)
	th := perfdb.DefaultThresholds()
	fs.IntVar(&th.Window, "window", th.Window, "baseline window (most recent N records per key)")
	fs.Float64Var(&th.Z, "z", th.Z, "robust z-score threshold")
	fs.Float64Var(&th.MinRel, "min-rel", th.MinRel, "relative scale floor (guards MAD=0 baselines)")
	failOn := fs.String("fail-on", "regress", "what fails the gate: regress (slower only) or change (any shift)")
	wallMinRel := fs.Float64("wall-min-rel", 1.5, "relative floor for the wall-clock self-cost gate (0 disables)")
	allocMinRel := fs.Float64("alloc-min-rel", 0.25, "relative floor for the allocation self-cost gate (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *failOn != "regress" && *failOn != "change" {
		fmt.Fprintf(stderr, "fiberperf check: -fail-on must be regress or change, got %q\n", *failOn)
		return 2
	}
	grid, size, err := g.resolve()
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf check: %v\n", err)
		return 2
	}
	traj, err := perfdb.Load(g.trajectory)
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf check: %v\n", err)
		return 1
	}
	fresh, err := harness.RunBenchGrid(grid, size, g.rev, time.Now, nil)
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf check: %v\n", err)
		return 1
	}
	var unverified []string
	for _, r := range fresh {
		if !r.Verified {
			unverified = append(unverified, r.Key())
		}
	}
	findings := traj.Check(fresh, th)
	for _, f := range findings {
		switch f.Verdict {
		case perfdb.VerdictNoBaseline:
			fmt.Fprintf(stdout, "%-12s %-40s %10s (no stored history)\n",
				f.Verdict, f.Key, vtime.Format(f.Value))
		default:
			fmt.Fprintf(stdout, "%-12s %-40s %10s vs median %10s  z=%+.2f  ratio %.3fx  (n=%d)\n",
				f.Verdict, f.Key, vtime.Format(f.Value), vtime.Format(f.Median),
				f.Z, f.Ratio, f.Baseline)
		}
	}
	bad := perfdb.Regressions(findings, *failOn == "change")
	// Self-cost gates: wall clock and allocations measure the simulator
	// process, not the model, so they run on real-machine noise. The
	// floors are deliberately loose (a 1.5 relative floor tolerates a 6x
	// wall shift at z=4) and the gates are regress-only even under
	// -fail-on change — a faster simulator never fails the build.
	selfGates := []struct {
		name   string
		metric func(perfdb.Record) float64
		minRel float64
	}{
		{"wall", func(r perfdb.Record) float64 { return r.WallSeconds }, *wallMinRel},
		{"allocs", func(r perfdb.Record) float64 { return r.AllocsPerRun }, *allocMinRel},
	}
	for _, gate := range selfGates {
		if gate.minRel <= 0 {
			continue
		}
		gth := th
		gth.MinRel = gate.minRel
		gf := traj.CheckMetric(fresh, gate.name, gate.metric, gth)
		for _, f := range perfdb.Regressions(gf, false) {
			fmt.Fprintf(stdout, "%-12s %-40s %12g vs median %12g  z=%+.2f  ratio %.3fx  (n=%d)\n",
				f.Verdict, f.Key, f.Value, f.Median, f.Z, f.Ratio, f.Baseline)
			bad = append(bad, f)
		}
	}
	for _, u := range unverified {
		fmt.Fprintf(stdout, "UNVERIFIED   %s\n", u)
	}
	if len(bad) > 0 || len(unverified) > 0 {
		fmt.Fprintf(stderr, "fiberperf check: %d gate failure(s), %d unverified run(s)\n",
			len(bad), len(unverified))
		return 1
	}
	fmt.Fprintf(stdout, "gate clean: %d cells checked against %s (window %d, z %g, floor %g%%)\n",
		len(findings), g.trajectory, th.Window, th.Z, th.MinRel*100)
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fiberperf diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the machine-readable diff document")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: fiberperf diff [-json] old-manifest.json new-manifest.json")
		return 2
	}
	oldM, err := obs.ReadManifestFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf diff: %v\n", err)
		return 1
	}
	newM, err := obs.ReadManifestFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf diff: %v\n", err)
		return 1
	}
	d := obs.DiffManifests(oldM, newM)
	if *asJSON {
		err = d.Encode(stdout)
	} else {
		err = d.WriteReport(stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "fiberperf diff: %v\n", err)
		return 1
	}
	return 0
}
