package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"fibersim/internal/obs"
	"fibersim/internal/perfdb"
)

// record then check on an unchanged tree: the simulator is
// deterministic in virtual time, so every cell must score z = 0 and
// the gate must pass.
func TestRecordThenCheckCleanGate(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer

	code := run([]string{"record", "-trajectory", traj, "-size", "test",
		"-apps", "stream", "-rev", "r1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("record exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "appended 6 records") {
		t.Errorf("stream-only grid should append 6 records (3 decomps x 2 compilers): %s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"check", "-trajectory", traj, "-size", "test",
		"-apps", "stream", "-rev", "r2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("unchanged tree failed the gate (exit %d)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "gate clean") {
		t.Errorf("clean gate should say so: %s", out.String())
	}
}

// The acceptance scenario: a synthetic 2x slowdown in one config must
// trip the gate. The slowdown is injected by halving that key's stored
// baseline times, which makes the (unchanged) fresh run look 2x slower.
func TestCheckCatchesInjectedSlowdown(t *testing.T) {
	traj := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	if code := run([]string{"record", "-trajectory", traj, "-size", "test",
		"-apps", "stream", "-rev", "r1"}, &out, &errb); code != 0 {
		t.Fatalf("record exit %d: %s", code, errb.String())
	}

	loaded, err := perfdb.Load(traj)
	if err != nil {
		t.Fatal(err)
	}
	victim := loaded.Records[0].Key()
	scaled := &perfdb.Trajectory{Path: filepath.Join(t.TempDir(), "scaled.json")}
	for _, r := range loaded.Records {
		if r.Key() == victim {
			r.TimeSeconds *= 0.5
		}
		if err := scaled.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	out.Reset()
	errb.Reset()
	code := run([]string{"check", "-trajectory", scaled.Path, "-size", "test",
		"-apps", "stream", "-rev", "r2"}, &out, &errb)
	if code == 0 {
		t.Fatalf("2x slowdown in %s passed the gate\nstdout: %s", victim, out.String())
	}
	if !strings.Contains(out.String(), "REGRESS") || !strings.Contains(out.String(), victim) {
		t.Errorf("findings should name the regressed key %s:\n%s", victim, out.String())
	}
	// Only the injected key regresses.
	if n := strings.Count(out.String(), "REGRESS"); n != 1 {
		t.Errorf("got %d regressions, want exactly 1:\n%s", n, out.String())
	}
}

// check against an empty trajectory reports no-baseline and passes:
// the first recorded revision can never fail the gate.
func TestCheckEmptyTrajectoryPasses(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"check", "-trajectory", filepath.Join(t.TempDir(), "none.json"),
		"-size", "test", "-apps", "stream"}, &out, &errb)
	if code != 0 {
		t.Fatalf("empty baseline failed the gate (exit %d): %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no-baseline") {
		t.Errorf("expected no-baseline verdicts:\n%s", out.String())
	}
}

func testManifest() *obs.Manifest {
	return &obs.Manifest{
		Schema: obs.ManifestSchema,
		App:    "stream",
		Config: obs.RunInfo{
			Machine: "a64fx", Procs: 4, Threads: 12,
			Alloc: "block", Bind: "stride1",
			Compiler: "as-is", Size: "test", Seed: 20210901,
		},
		Verified:    true,
		TimeSeconds: 0.25,
		GFlops:      123.4,
		Profile: obs.Profile{
			Kernels: []obs.KernelProfile{{
				Kernel: "triad", Calls: 40, Seconds: 4e-3,
				Attribution: obs.Attribution{Compute: 1e-3, Mem: 3e-3},
				Dominant:    "mem", Category: "memory",
			}},
		},
	}
}

func TestDiffSubcommand(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := testManifest().WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	m := testManifest()
	m.TimeSeconds = 0.5
	m.Profile.Kernels[0].Seconds = 8e-3
	m.Profile.Kernels[0].Attribution = obs.Attribution{Compute: 6e-3, Mem: 2e-3}
	m.Profile.Kernels[0].Dominant = "compute"
	m.Profile.Kernels[0].Category = "compute"
	if err := m.WriteFile(newPath); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"diff", oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("diff exit: %s", errb.String())
	}
	for _, want := range []string{"2.000x", "mem->compute FLIP"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff report missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"diff", "-json", oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("diff -json exit: %s", errb.String())
	}
	if !strings.Contains(out.String(), obs.DiffSchema) {
		t.Errorf("JSON diff missing schema tag:\n%s", out.String())
	}

	if code := run([]string{"diff", oldPath}, &out, &errb); code != 2 {
		t.Error("diff with one argument must be a usage error")
	}
}

func TestUsageAndBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Error("no args must be a usage error")
	}
	if code := run([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Error("unknown subcommand must be a usage error")
	}
	if code := run([]string{"check", "-fail-on", "vibes"}, &out, &errb); code != 2 {
		t.Error("bad -fail-on must be a usage error")
	}
	if code := run([]string{"record", "-size", "galactic"}, &out, &errb); code != 2 {
		t.Error("bad -size must be a usage error")
	}
	if code := run([]string{"record", "-apps", "nosuchapp"}, &out, &errb); code != 2 {
		t.Error("unknown -apps must be a usage error")
	}
}
