package main

// The trace API: GET /traces lists the in-memory trace ring (newest
// first) plus the tracer's eviction counters; GET /traces/{id} serves
// one finished trace as fibersim/service-trace/v1 JSON (default), a
// human-readable tree (?format=text), or a chrome://tracing document
// (?format=chrome). GET /jobs/{id}/events streams a job's transitions
// and span completions as SSE.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
)

// traceSummary is one row of the /traces listing.
type traceSummary struct {
	ID              string  `json:"id"`
	Name            string  `json:"name"`
	StartUnixNanos  int64   `json:"start_unix_ns"`
	DurationSeconds float64 `json:"duration_seconds"`
	Spans           int     `json:"spans"`
	RemoteParent    string  `json:"remote_parent,omitempty"`
}

// traceListing is the /traces body: the ring's contents plus the
// counters that say how trustworthy the ring is (what was evicted or
// dropped is not listed).
type traceListing struct {
	Traces []traceSummary  `json:"traces"`
	Stats  obs.TracerStats `json:"stats"`
}

func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing not configured", http.StatusServiceUnavailable)
		return
	}
	listing := traceListing{Traces: []traceSummary{}, Stats: s.tracer.Stats()}
	for _, tr := range s.tracer.Traces() {
		listing.Traces = append(listing.Traces, traceSummary{
			ID:              tr.ID,
			Name:            tr.Name,
			StartUnixNanos:  tr.StartUnixNanos,
			DurationSeconds: tr.DurationSeconds,
			Spans:           len(tr.Spans),
			RemoteParent:    tr.RemoteParent,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(listing); err != nil {
		return
	}
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing not configured", http.StatusServiceUnavailable)
		return
	}
	tr, ok := s.tracer.Trace(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such trace (finished traces only; the ring evicts oldest first)", http.StatusNotFound)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.Encode(w); err != nil {
			return
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := tr.WriteText(w); err != nil {
			return
		}
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteChromeTrace(w); err != nil {
			return
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (json, text, chrome)", format), http.StatusBadRequest)
	}
}

// handleJobEvents streams one job's lifecycle as SSE: "state" events
// carry job snapshots, "span" events completed trace spans. The stream
// closes itself once the lifecycle is over — for a traced job that is
// the root span's completion (which follows the terminal journal
// write), for an untraced job the terminal state event. A job already
// terminal at subscribe time gets its current state plus, when the
// trace is still in the ring, a replay of its spans.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "job execution not configured", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}

	// Subscribe before reading the job state again, so nothing falls
	// between the snapshot and the subscription.
	keys := []string{"job:" + job.ID}
	if job.TraceID != "" {
		keys = append(keys, "trace:"+job.TraceID)
	}
	ch, cancel := s.events.subscribe(keys...)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	send := func(ev jobEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Current state first: every client sees at least one event.
	job, _ = s.jobs.Get(job.ID)
	if !send(jobEvent{Type: "state", Job: &job}) {
		return
	}
	if job.State.Terminal() {
		// Lifecycle already over; replay the trace if it survives.
		if tr, ok := s.traceFor(job); ok {
			for i := range tr.Spans {
				if !send(jobEvent{Type: "span", Span: &tr.Spans[i], TraceID: tr.ID}) {
					return
				}
			}
		}
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !send(ev) {
				return
			}
			if ev.Type == "span" && ev.Span.Parent == "" {
				return // root span closed: the traced lifecycle is complete
			}
			if ev.Type == "state" && job.TraceID == "" && ev.Job != nil && ev.Job.State.Terminal() {
				return // untraced: the terminal state is the last event
			}
		}
	}
}

// traceFor fetches a job's finished trace from the ring, if tracing is
// on, the job was traced, and the ring has not evicted it yet.
func (s *server) traceFor(job jobs.Job) (*obs.Trace, bool) {
	if s.tracer == nil || job.TraceID == "" {
		return nil, false
	}
	return s.tracer.Trace(job.TraceID)
}
