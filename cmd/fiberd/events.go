package main

// The job event feed: GET /jobs/{id}/events streams one SSE event per
// state transition ("state") and one per completed trace span ("span")
// while a job executes. The hub fans events out to per-subscriber
// buffered channels with drop-on-full semantics — a stalled client
// loses events (counted) rather than stalling the job engine, whose
// OnTransition/OnSpanEnd hooks run on the worker path.

import (
	"sync"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
)

// jobEvent is one SSE payload. Exactly one of Job/Span is set.
type jobEvent struct {
	// Type is the SSE event name: "state" or "span".
	Type string `json:"type"`
	// Job is the transition snapshot for state events.
	Job *jobs.Job `json:"job,omitempty"`
	// Span is the completed span for span events.
	Span *obs.SpanRecord `json:"span,omitempty"`
	// TraceID accompanies span events (the record itself carries only
	// the span's own ids).
	TraceID string `json:"trace_id,omitempty"`
}

// eventHub routes jobEvents to subscribers by key. State events are
// published under "job:<id>", span completions under "trace:<id>"; a
// /jobs/{id}/events handler subscribes to both keys for its job.
type eventHub struct {
	mu      sync.Mutex
	subs    map[string]map[chan jobEvent]struct{}
	dropped int64
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[string]map[chan jobEvent]struct{}{}}
}

// subBuffer is each subscriber's channel depth. A job's full lifecycle
// is a few dozen events; the buffer absorbs bursts (retry storms)
// while the client catches up.
const subBuffer = 256

// subscribe registers one channel under every key. The returned cancel
// must be called exactly once; after it returns no further sends reach
// the channel.
func (h *eventHub) subscribe(keys ...string) (chan jobEvent, func()) {
	ch := make(chan jobEvent, subBuffer)
	h.mu.Lock()
	for _, k := range keys {
		set := h.subs[k]
		if set == nil {
			set = map[chan jobEvent]struct{}{}
			h.subs[k] = set
		}
		set[ch] = struct{}{}
	}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		for _, k := range keys {
			if set := h.subs[k]; set != nil {
				delete(set, ch)
				if len(set) == 0 {
					delete(h.subs, k)
				}
			}
		}
		h.mu.Unlock()
	}
}

// publish delivers ev to every subscriber of key without blocking: a
// full subscriber buffer drops the event and bumps the counter. The
// send happens under the hub lock, which is safe precisely because it
// can never block.
func (h *eventHub) publish(key string, ev jobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs[key] {
		select {
		case ch <- ev:
		default:
			h.dropped++
		}
	}
}

// droppedCount reports events lost to slow subscribers.
func (h *eventHub) droppedCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
