package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
	"fibersim/internal/tenant"
)

// server holds fiberd's state: its metrics registry (shared with the
// job manager — these are serving metrics), the manifest directory it
// exposes, the sweep progress file it streams, and the job manager
// behind POST /jobs. The clock is injectable so the /metrics
// exposition is testable verbatim.
type server struct {
	reg          *obs.Registry
	manifestDir  string
	progressPath string
	now          func() time.Time
	pollEvery    time.Duration
	// jobs executes submitted run specs; nil disables the job API
	// (405-free: the routes then answer 503).
	jobs *jobs.Manager
	// resolve deep-validates a spec at admission (app/machine/
	// compiler/size/fault against the registries); nil skips — bad
	// specs then fail at execution instead of 400 at the door.
	resolve func(jobs.Spec) error
	// limiter rate-limits POST /jobs per tenant (429 + Retry-After on
	// an empty bucket); nil disables rate limiting.
	limiter *tenant.Limiter
	// tracer owns the service traces behind GET /traces; nil disables
	// request tracing (jobs still run, untraced).
	tracer *obs.Tracer
	// events fans job transitions and span completions out to
	// /jobs/{id}/events subscribers.
	events *eventHub
	// log is the structured operational log; every line about a traced
	// request carries its trace_id so logs and traces join on it.
	log *slog.Logger
	// pprofOn mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiling surface stays off unless -pprof was given).
	pprofOn bool
	// sampler feeds Go runtime telemetry into the registry and backs
	// GET /debug/runtime; nil (the default) keeps both off, so the
	// /metrics exposition is unchanged unless -runtime-metrics was
	// given.
	sampler *obs.RuntimeSampler
}

func newServer(reg *obs.Registry, manifestDir, progressPath string, pollEvery time.Duration,
	jm *jobs.Manager, resolve func(jobs.Spec) error) *server {
	return &server{
		reg:          reg,
		manifestDir:  manifestDir,
		progressPath: progressPath,
		now:          time.Now,
		pollEvery:    pollEvery,
		jobs:         jm,
		resolve:      resolve,
		events:       newEventHub(),
		log:          slog.New(slog.NewJSONHandler(io.Discard, nil)),
	}
}

// handler wires the route table. Every route goes through instrument,
// which records a request counter and latency histogram per route
// pattern (patterns, not raw paths, to keep label cardinality fixed).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /runs", s.instrument("/runs", s.handleRuns))
	mux.Handle("GET /runs/live", s.instrument("/runs/live", s.handleLive))
	mux.Handle("GET /runs/{name}", s.instrument("/runs/{name}", s.handleRun))
	mux.Handle("POST /jobs", s.instrument("/jobs", s.handleSubmitJob))
	mux.Handle("GET /jobs", s.instrument("/jobs", s.handleJobs))
	mux.Handle("GET /jobs/{id}", s.instrument("/jobs/{id}", s.handleJob))
	mux.Handle("GET /jobs/{id}/events", s.instrument("/jobs/{id}/events", s.handleJobEvents))
	mux.Handle("GET /traces", s.instrument("/traces", s.handleTraces))
	mux.Handle("GET /traces/{id}", s.instrument("/traces/{id}", s.handleTrace))
	if s.sampler != nil {
		mux.Handle("GET /debug/runtime", s.instrument("/debug/runtime", s.handleRuntime))
	}
	if s.pprofOn {
		// The pprof mux is intentionally unmetered: profiling traffic
		// would pollute the serving histograms it exists to explain.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response code for the request counter.
// It forwards Flush so SSE streaming survives the wrapping.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		sr := &statusRecorder{ResponseWriter: w}
		h(sr, r)
		if sr.code == 0 {
			sr.code = http.StatusOK
		}
		s.reg.Counter("fiberd_http_requests_total", "HTTP requests served, by route and status code.",
			obs.Labels{"path": route, "code": strconv.Itoa(sr.code)}).Inc()
		// The class counter is the alerting-friendly rollup of the
		// per-code counter above: "5xx rate on /jobs" is one series.
		s.reg.Counter("fiberd_http_responses_total", "HTTP responses by route and status class (2xx..5xx).",
			obs.Labels{"path": route, "class": statusClass(sr.code)}).Inc()
		s.reg.Histogram("fiberd_http_request_seconds", "Wall-clock request latency.",
			obs.TimeBuckets(), obs.Labels{"path": route}).Observe(s.now().Sub(start).Seconds())
	})
}

// statusClass buckets an HTTP status code into its class label.
func statusClass(code int) string {
	switch {
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	case code >= 500 && code < 600:
		return "5xx"
	}
	return "other"
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.tracer != nil {
		// The tracer is registry-agnostic; mirror its counters into
		// gauges at scrape time so eviction pressure is observable.
		st := s.tracer.Stats()
		s.reg.Gauge("fiberd_traces_active", "Traces with an open root span.", nil).Set(float64(st.Active))
		s.reg.Gauge("fiberd_traces_stored", "Finished traces held in the ring.", nil).Set(float64(st.Stored))
		s.reg.Gauge("fiberd_traces_evicted", "Finished traces evicted from the ring, cumulative.", nil).Set(float64(st.Evicted))
		s.reg.Gauge("fiberd_trace_spans_dropped", "Spans dropped at per-trace capacity or after finalization, cumulative.", nil).Set(float64(st.SpansDropped))
	}
	if s.events != nil {
		s.reg.Gauge("fiberd_job_events_dropped", "Job events dropped on slow /jobs/{id}/events subscribers, cumulative.", nil).
			Set(float64(s.events.droppedCount()))
	}
	// Render to a buffer first so a slow client cannot hold the
	// registry in a half-written state, then send in one go.
	var buf bytes.Buffer
	if err := s.reg.WritePrometheus(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Client went away mid-body; nothing useful to do.
		return
	}
}

// handleRuntime serves the runtime sampler's snapshot as JSON. It
// samples on demand, so a GET always reflects the process right now
// (and two GETs diff into an interval — fiberload leans on that),
// rather than the background tick's staleness.
func (s *server) handleRuntime(w http.ResponseWriter, _ *http.Request) {
	s.sampler.Sample()
	snap, ok := s.sampler.Snapshot()
	if !ok {
		http.Error(w, "runtime sampler has not sampled yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		// Client went away mid-body; nothing useful to do.
		return
	}
}

// runEntry is one row of the /runs listing.
type runEntry struct {
	File        string  `json:"file"`
	App         string  `json:"app"`
	Config      string  `json:"config"`
	TimeSeconds float64 `json:"time_seconds"`
	GFlops      float64 `json:"gflops"`
	Verified    bool    `json:"verified"`
}

func (s *server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	names, err := filepath.Glob(filepath.Join(s.manifestDir, "*.json"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sort.Strings(names)
	entries := []runEntry{}
	for _, path := range names {
		m, err := obs.ReadManifestFile(path)
		if err != nil {
			// A corrupt manifest must not take the listing down; count
			// it and move on.
			s.reg.Counter("fiberd_manifest_errors_total",
				"Manifests skipped because they failed to parse or validate.", nil).Inc()
			continue
		}
		c := m.Config
		entries = append(entries, runEntry{
			File: filepath.Base(path),
			App:  m.App,
			Config: fmt.Sprintf("%s %dx%d %s %s",
				c.Machine, c.Procs, c.Threads, c.Compiler, c.Size),
			TimeSeconds: m.TimeSeconds,
			GFlops:      m.GFlops,
			Verified:    m.Verified,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return
	}
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Base names only: the manifest directory is the whole universe.
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		http.Error(w, "manifest name must be a plain file name", http.StatusBadRequest)
		return
	}
	path := filepath.Join(s.manifestDir, name)
	if _, err := os.Stat(path); err != nil {
		http.Error(w, "no such manifest", http.StatusNotFound)
		return
	}
	m, err := obs.ReadManifestFile(path)
	if err != nil {
		http.Error(w, fmt.Sprintf("manifest invalid: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := m.Encode(w); err != nil {
		return
	}
}

// handleLive streams sweep progress as Server-Sent Events. Each
// complete, valid progress line in the file becomes one "run" event;
// the file is re-read from the last offset every poll tick, so a
// fibersweep -progress redirect can be tailed live. The stream ends
// when the client disconnects.
func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if s.progressPath == "" {
		http.Error(w, "no progress file configured (-progress)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ticker := time.NewTicker(s.pollEvery)
	defer ticker.Stop()
	var off int64
	for {
		lines, n, err := readNewLines(s.progressPath, off)
		if err == nil {
			off = n
			sent := false
			for _, ln := range lines {
				// Forward only lines that parse as progress; a torn
				// tail or stray log line must not corrupt the stream.
				if _, perr := obs.ParseProgress(ln); perr != nil {
					continue
				}
				if _, werr := fmt.Fprintf(w, "event: run\ndata: %s\n\n", ln); werr != nil {
					return
				}
				sent = true
			}
			if sent {
				fl.Flush()
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// readNewLines returns the complete lines appended to path since
// offset, plus the new offset (just past the last newline). A missing
// file is not an error — the sweep may simply not have started.
func readNewLines(path string, offset int64) ([][]byte, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, offset, nil
		}
		return nil, offset, err
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, offset, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, offset, err
	}
	last := bytes.LastIndexByte(data, '\n')
	if last < 0 {
		return nil, offset, nil
	}
	var out [][]byte
	for _, ln := range bytes.Split(data[:last], []byte("\n")) {
		ln = bytes.TrimSpace(ln)
		if len(ln) > 0 {
			out = append(out, ln)
		}
	}
	return out, offset + int64(last) + 1, nil
}
