package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
)

// tracedServer mirrors main's production wiring: tracer with an
// OnSpanEnd feed into the event hub, OnTransition into the hub, a real
// journal, and the Execute-based runner (so run spans and manifest
// links are the real thing, not stubs).
func tracedServer(t *testing.T, cfg jobs.Config) (*server, http.Handler, *jobs.Manager) {
	t.Helper()
	reg := obs.NewRegistry()
	hub := newEventHub()
	tracer, err := obs.NewTracer(obs.TracerConfig{
		Now:  time.Now,
		Seed: 42,
		OnSpanEnd: func(sc obs.SpanContext, rec obs.SpanRecord) {
			hub.publish("trace:"+sc.TraceID.String(), jobEvent{
				Type: "span", Span: &rec, TraceID: sc.TraceID.String(),
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	journal, _, err := jobs.OpenJournal(filepath.Join(t.TempDir(), "j.journal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })

	if cfg.Runner == nil {
		cfg.Runner = newRunner("", slog.New(slog.NewJSONHandler(io.Discard, nil)))
	}
	cfg.Registry = reg
	cfg.Journal = journal
	cfg.OnTransition = func(job jobs.Job) {
		hub.publish("job:"+job.ID, jobEvent{Type: "state", Job: &job})
	}
	jm, err := jobs.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jm.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := jm.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	s := newServer(reg, t.TempDir(), "", time.Millisecond, jm, resolveSpec)
	s.tracer = tracer
	s.events = hub
	return s, s.handler(), jm
}

// fetchTrace polls GET /traces/{id} until the trace is finalized (the
// root span closes a hair after the terminal state becomes visible).
func fetchTrace(t *testing.T, h http.Handler, id string) *obs.Trace {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces/"+id, nil))
		if rr.Code == http.StatusOK {
			tr, err := obs.ParseTrace(rr.Body)
			if err != nil {
				t.Fatalf("served trace does not parse: %v", err)
			}
			return tr
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("trace %s never appeared", id)
	return nil
}

// TestTracedSubmitEndToEnd is the acceptance path: one POST /jobs must
// yield a retrievable trace covering admission through queue wait,
// attempt, harness run and the terminal journal write, with the run
// span linking back from the saved manifest.
func TestTracedSubmitEndToEnd(t *testing.T) {
	s, h, _ := tracedServer(t, jobs.Config{QueueCap: 16, Workers: 2})

	// Submit as a child of a remote trace, like a CI driver would.
	remote := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/jobs", strings.NewReader(`{"app":"stream"}`))
	req.Header.Set("traceparent", remote)
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rr.Code, rr.Body.String())
	}
	var job jobs.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	if job.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("job trace id %q did not adopt the remote trace", job.TraceID)
	}
	if tp := rr.Header().Get("traceparent"); !strings.Contains(tp, job.TraceID) {
		t.Errorf("response traceparent %q does not carry the trace id", tp)
	}

	done := waitJobState(t, h, job.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job = %+v", done)
	}
	tr := fetchTrace(t, h, job.TraceID)
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if tr.RemoteParent != "00f067aa0ba902b7" {
		t.Errorf("remote parent = %q", tr.RemoteParent)
	}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"job", "queue-wait", "attempt", "run", "journal-append"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span (have %v)", want, names)
		}
	}
	if tr.OpenSpans != 0 {
		t.Errorf("open spans = %d", tr.OpenSpans)
	}

	// The listing sees it, and the alternate formats render.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces", nil))
	var listing traceListing
	if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].ID != job.TraceID {
		t.Errorf("listing = %+v", listing)
	}
	if listing.Stats.Stored != 1 {
		t.Errorf("stats = %+v", listing.Stats)
	}
	for _, format := range []string{"text", "chrome"} {
		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces/"+job.TraceID+"?format="+format, nil))
		if rr.Code != http.StatusOK || rr.Body.Len() == 0 {
			t.Errorf("format=%s = %d (%d bytes)", format, rr.Code, rr.Body.Len())
		}
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces/"+job.TraceID+"?format=yaml", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("format=yaml = %d, want 400", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces/ffffffffffffffffffffffffffffffff", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("missing trace = %d, want 404", rr.Code)
	}
	_ = s
}

// TestTracedShedEndsSpan: a 429'd submission must finalize its trace
// immediately (handler-owned span), annotated with the shed outcome.
func TestTracedShedEndsSpan(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, h, jm := tracedServer(t, jobs.Config{
		QueueCap: 1, Workers: 1,
		Runner: func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
			<-block
			return jobs.Result{}, nil
		},
	})
	if rr := postJob(t, h, `{"app":"stream"}`); rr.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rr.Code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		list := jm.Jobs()
		if len(list) > 0 && list[0].State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if rr := postJob(t, h, `{"app":"stream"}`); rr.Code != http.StatusAccepted {
		t.Fatalf("second submit = %d", rr.Code)
	}
	rr := postJob(t, h, `{"app":"stream"}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", rr.Code)
	}
	// The shed trace is already finalized: exactly one stored trace
	// (both admitted jobs are still open), with the outcome attr.
	traces := s.tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("stored traces = %d, want the shed one only", len(traces))
	}
	var outcome string
	for _, a := range traces[0].Spans[0].Attrs {
		if a.Key == "outcome" {
			outcome = a.Value
		}
	}
	if outcome != "shed-queue-full" {
		t.Errorf("shed outcome = %q", outcome)
	}
}

// sseEvents reads SSE events off a response body until the stream ends.
type sseEvent struct {
	name string
	data string
}

func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "" && ev.name != "":
			out = append(out, ev)
			ev = sseEvent{}
		}
	}
	return out
}

// TestJobEventsSSE subscribes to a live job and requires the stream to
// deliver its transitions and span completions, then close itself at
// the root span's end.
func TestJobEventsSSE(t *testing.T) {
	release := make(chan struct{})
	_, h, _ := tracedServer(t, jobs.Config{
		QueueCap: 16, Workers: 1,
		Runner: func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
			<-release
			return jobs.Result{TimeSeconds: 0.5, GFlops: 2, Verified: true}, nil
		},
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	rr := postJob(t, h, `{"app":"stream"}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rr.Code)
	}
	var job jobs.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	// Subscription is active; let the job finish. The stream must end
	// on its own (root span completion), so readSSE terminates.
	close(release)
	events := readSSE(t, resp.Body)

	var states []string
	spans := map[string]int{}
	var rootLast bool
	for i, ev := range events {
		switch ev.name {
		case "state":
			var e jobEvent
			if err := json.Unmarshal([]byte(ev.data), &e); err != nil || e.Job == nil {
				t.Fatalf("state event %q: %v", ev.data, err)
			}
			states = append(states, string(e.Job.State))
		case "span":
			var e jobEvent
			if err := json.Unmarshal([]byte(ev.data), &e); err != nil || e.Span == nil {
				t.Fatalf("span event %q: %v", ev.data, err)
			}
			spans[e.Span.Name]++
			rootLast = e.Span.Parent == "" && i == len(events)-1
		default:
			t.Errorf("unknown event %q", ev.name)
		}
	}
	if len(states) == 0 || states[0] != "accepted" && states[0] != "running" {
		t.Errorf("states = %v", states)
	}
	if states[len(states)-1] != "done" {
		t.Errorf("last state = %v", states)
	}
	// The blocked stub runner opens no "run" child; the manager-side
	// spans must still stream.
	if spans["attempt"] == 0 || spans["journal-append"] == 0 {
		t.Errorf("span events = %v", spans)
	}
	if !rootLast {
		t.Errorf("stream did not end on the root span completion: %v", events)
	}
}

// TestJobEventsTerminalReplay: subscribing after the job finished must
// deliver the final state plus a replay of the trace's spans, then
// close.
func TestJobEventsTerminalReplay(t *testing.T) {
	_, h, _ := tracedServer(t, jobs.Config{QueueCap: 16, Workers: 1})
	ts := httptest.NewServer(h)
	defer ts.Close()

	rr := postJob(t, h, `{"app":"stream"}`)
	var job jobs.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, h, job.ID)
	fetchTrace(t, h, job.TraceID) // trace finalized in the ring

	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) < 2 || events[0].name != "state" {
		t.Fatalf("replay events = %+v", events)
	}
	var e jobEvent
	if err := json.Unmarshal([]byte(events[0].data), &e); err != nil || e.Job.State != jobs.StateDone {
		t.Fatalf("replay state = %q", events[0].data)
	}
	spanCount := 0
	for _, ev := range events[1:] {
		if ev.name == "span" {
			spanCount++
		}
	}
	if spanCount < 4 {
		t.Errorf("replayed %d spans, want the full lifecycle", spanCount)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/job-999999/events", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("missing job events = %d, want 404", rr.Code)
	}
}

// TestJobEventsNoGoroutineLeak mirrors the /runs/live leak test for
// the job event stream: clients dropped mid-stream must not strand
// handler goroutines, and their hub subscriptions must be released.
func TestJobEventsNoGoroutineLeak(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, h, _ := tracedServer(t, jobs.Config{
		QueueCap: 16, Workers: 1,
		Runner: func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
			<-release
			return jobs.Result{}, nil
		},
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	rr := postJob(t, h, `{"app":"stream"}`)
	var job jobs.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/jobs/"+job.ID+"/events", nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		resp.Body.Close()
	}

	// Handler goroutines must unwind and every cancel() must release
	// its hub subscription (both lag the client drop slightly).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.Gosched()
		s.events.mu.Lock()
		subs := len(s.events.subs)
		s.events.mu.Unlock()
		if n := runtime.NumGoroutine(); n <= before+5 && subs == 0 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("leak: goroutines before=%d now=%d, hub keys=%d\n%s",
				before, runtime.NumGoroutine(), subs, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
