package main

// Tests for the multi-tenant overload-protection surface of the job
// API: per-tenant rate limiting, the bounded GET /jobs listing, and
// cached/coalesced submission responses.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
	"fibersim/internal/tenant"
)

// lockedClock is a hand-advanced clock for the limiter tests.
type lockedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *lockedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockedClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestSubmitJobRateLimited(t *testing.T) {
	reg := obs.NewRegistry()
	s, h, _ := apiServer(t, jobs.Config{Registry: reg}, false)
	clk := &lockedClock{t: time.Unix(1700000000, 0)}
	lim, err := tenant.NewLimiter(tenant.Bucket{Rate: 0.5, Burst: 1}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	s.limiter = lim

	if rr := postJob(t, h, `{"app":"stream","tenant":"alice"}`); rr.Code != http.StatusAccepted {
		t.Fatalf("first alice submit = %d: %s", rr.Code, rr.Body.String())
	}
	rr := postJob(t, h, `{"app":"stream","tenant":"alice"}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second alice submit = %d, want 429", rr.Code)
	}
	// At 0.5 tokens/s from empty, the next token is 2s away; the
	// header rounds up and is per-tenant, not the queue estimate.
	if got := rr.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want 2", got)
	}
	if got := reg.Counter("fiberd_tenant_shed_total", "",
		obs.Labels{"tenant": "alice", "reason": "rate_limit"}).Value(); got != 1 {
		t.Fatalf("rate-limit shed counter %v, want 1", got)
	}
	// Another tenant's bucket is untouched.
	if rr := postJob(t, h, `{"app":"stream","tenant":"bob"}`); rr.Code != http.StatusAccepted {
		t.Fatalf("bob submit = %d, want 202", rr.Code)
	}
	// And alice recovers once her bucket refills.
	clk.advance(2 * time.Second)
	if rr := postJob(t, h, `{"app":"stream","tenant":"alice"}`); rr.Code != http.StatusAccepted {
		t.Fatalf("refilled alice submit = %d, want 202", rr.Code)
	}
}

func TestJobsListLimitAndTenantFilter(t *testing.T) {
	_, h, _ := apiServer(t, jobs.Config{QueueCap: 256}, false)
	for i := 0; i < 3; i++ {
		if rr := postJob(t, h, `{"app":"stream","tenant":"alice"}`); rr.Code != http.StatusAccepted {
			t.Fatalf("alice submit %d = %d", i, rr.Code)
		}
	}
	if rr := postJob(t, h, `{"app":"mvmc","tenant":"bob"}`); rr.Code != http.StatusAccepted {
		t.Fatalf("bob submit = %d", rr.Code)
	}

	list := func(url string) []jobs.Job {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, rr.Code, rr.Body.String())
		}
		var out []jobs.Job
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if got := list("/jobs"); len(got) != 4 {
		t.Fatalf("GET /jobs returned %d jobs, want 4", len(got))
	}
	recent := list("/jobs?limit=2")
	if len(recent) != 2 || recent[1].Spec.Tenant != "bob" {
		t.Fatalf("limit=2 returned %+v, want the 2 most recent ending with bob's", recent)
	}
	alice := list("/jobs?tenant=alice")
	if len(alice) != 3 {
		t.Fatalf("tenant=alice returned %d jobs, want 3", len(alice))
	}
	if got := list("/jobs?tenant=alice&limit=1"); len(got) != 1 || got[0].ID != alice[2].ID {
		t.Fatalf("tenant+limit returned %+v, want alice's newest", got)
	}
	if got := list("/jobs?tenant=nobody"); len(got) != 0 {
		t.Fatalf("unknown tenant returned %d jobs, want 0", len(got))
	}
	// The default window caps the listing: a long-lived daemon's full
	// history no longer comes back on a bare GET /jobs.
	for i := 0; i < defaultJobsLimit; i++ {
		if rr := postJob(t, h, `{"app":"stream"}`); rr.Code != http.StatusAccepted {
			t.Fatalf("filler submit %d = %d", i, rr.Code)
		}
	}
	if got := list("/jobs"); len(got) != defaultJobsLimit {
		t.Fatalf("default listing returned %d jobs, want %d", len(got), defaultJobsLimit)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs?limit=x", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", rr.Code)
	}
}

func TestSubmitJobCachedAndCoalescedResponses(t *testing.T) {
	cache, err := jobs.OpenResultCache("")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	_, h, _ := apiServer(t, jobs.Config{
		Cache:   cache,
		Workers: 1,
		Runner: func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
			started <- struct{}{}
			<-release
			return jobs.Result{TimeSeconds: 1.25, GFlops: 5, Verified: true}, nil
		},
	}, true)

	first := postJob(t, h, `{"app":"stream","tenant":"alice"}`)
	if first.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", first.Code, first.Body.String())
	}
	var firstJob jobs.Job
	if err := json.Unmarshal(first.Body.Bytes(), &firstJob); err != nil {
		t.Fatal(err)
	}
	<-started

	// Duplicate while in flight: 202 + the same job, marked coalesced
	// (tenant differs, but tenant is not an experiment axis).
	dup := postJob(t, h, `{"app":"stream","tenant":"bob"}`)
	if dup.Code != http.StatusAccepted {
		t.Fatalf("coalesced submit = %d: %s", dup.Code, dup.Body.String())
	}
	var dupJob jobs.Job
	if err := json.Unmarshal(dup.Body.Bytes(), &dupJob); err != nil {
		t.Fatal(err)
	}
	if !dupJob.Coalesced || dupJob.ID != firstJob.ID {
		t.Fatalf("coalesced response %+v, want coalesced onto %s", dupJob, firstJob.ID)
	}

	close(release)
	waitJobState(t, h, firstJob.ID)

	// Duplicate after completion: 200 + the cached result, complete.
	cached := postJob(t, h, `{"app":"stream"}`)
	if cached.Code != http.StatusOK {
		t.Fatalf("cached submit = %d: %s", cached.Code, cached.Body.String())
	}
	var cachedJob jobs.Job
	if err := json.Unmarshal(cached.Body.Bytes(), &cachedJob); err != nil {
		t.Fatal(err)
	}
	if !cachedJob.Cached || cachedJob.Degraded || cachedJob.State != jobs.StateDone {
		t.Fatalf("cached response %+v, want cached non-degraded done", cachedJob)
	}
	if cachedJob.Result == nil || cachedJob.Result.TimeSeconds != 1.25 {
		t.Fatalf("cached result %+v, want the original", cachedJob.Result)
	}
}
