package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
)

// fakeClock advances one millisecond per now() call, making request
// latencies — and therefore the whole /metrics exposition — exact.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	var ticks int
	return func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * time.Millisecond)
	}
}

func testServer(t *testing.T) (*server, http.Handler) {
	t.Helper()
	reg := obs.NewRegistry()
	jm, err := jobs.NewManager(jobs.Config{
		Runner:   func(context.Context, jobs.Spec) (jobs.Result, error) { return jobs.Result{}, nil },
		QueueCap: 16,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(reg, t.TempDir(), "", time.Millisecond, jm, nil)
	s.now = fakeClock()
	tracer, err := obs.NewTracer(obs.TracerConfig{Now: s.now, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.tracer = tracer
	return s, s.handler()
}

// goldenMetrics is the verbatim /metrics body after exactly one
// /healthz request under the fake clock (1 ms latency). It pins the
// Prometheus text exposition format: HELP/TYPE headers, sorted
// families, sorted labels, cumulative le buckets with +Inf, sum and
// count. Regenerate by hand if the metric set changes deliberately.
const goldenMetrics = `# HELP fiberd_http_request_seconds Wall-clock request latency.
# TYPE fiberd_http_request_seconds histogram
fiberd_http_request_seconds_bucket{path="/healthz",le="1e-09"} 0
fiberd_http_request_seconds_bucket{path="/healthz",le="1e-08"} 0
fiberd_http_request_seconds_bucket{path="/healthz",le="1e-07"} 0
fiberd_http_request_seconds_bucket{path="/healthz",le="1e-06"} 0
fiberd_http_request_seconds_bucket{path="/healthz",le="9.999999999999999e-06"} 0
fiberd_http_request_seconds_bucket{path="/healthz",le="9.999999999999999e-05"} 0
fiberd_http_request_seconds_bucket{path="/healthz",le="0.001"} 1
fiberd_http_request_seconds_bucket{path="/healthz",le="0.01"} 1
fiberd_http_request_seconds_bucket{path="/healthz",le="0.1"} 1
fiberd_http_request_seconds_bucket{path="/healthz",le="1"} 1
fiberd_http_request_seconds_bucket{path="/healthz",le="10"} 1
fiberd_http_request_seconds_bucket{path="/healthz",le="100"} 1
fiberd_http_request_seconds_bucket{path="/healthz",le="+Inf"} 1
fiberd_http_request_seconds_sum{path="/healthz"} 0.001
fiberd_http_request_seconds_count{path="/healthz"} 1
# HELP fiberd_http_requests_total HTTP requests served, by route and status code.
# TYPE fiberd_http_requests_total counter
fiberd_http_requests_total{code="200",path="/healthz"} 1
# HELP fiberd_http_responses_total HTTP responses by route and status class (2xx..5xx).
# TYPE fiberd_http_responses_total counter
fiberd_http_responses_total{class="2xx",path="/healthz"} 1
# HELP fiberd_job_events_dropped Job events dropped on slow /jobs/{id}/events subscribers, cumulative.
# TYPE fiberd_job_events_dropped gauge
fiberd_job_events_dropped 0
# HELP fiberd_jobs_queue_capacity Admission queue bound; submissions beyond it are shed with 429.
# TYPE fiberd_jobs_queue_capacity gauge
fiberd_jobs_queue_capacity 16
# HELP fiberd_jobs_queue_depth Jobs accepted and waiting for a worker.
# TYPE fiberd_jobs_queue_depth gauge
fiberd_jobs_queue_depth 0
# HELP fiberd_jobs_running Jobs currently executing an attempt.
# TYPE fiberd_jobs_running gauge
fiberd_jobs_running 0
# HELP fiberd_trace_spans_dropped Spans dropped at per-trace capacity or after finalization, cumulative.
# TYPE fiberd_trace_spans_dropped gauge
fiberd_trace_spans_dropped 0
# HELP fiberd_traces_active Traces with an open root span.
# TYPE fiberd_traces_active gauge
fiberd_traces_active 0
# HELP fiberd_traces_evicted Finished traces evicted from the ring, cumulative.
# TYPE fiberd_traces_evicted gauge
fiberd_traces_evicted 0
# HELP fiberd_traces_stored Finished traces held in the ring.
# TYPE fiberd_traces_stored gauge
fiberd_traces_stored 0
`

func TestMetricsGolden(t *testing.T) {
	_, h := testServer(t)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz = %d %q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rr.Code)
	}
	if got := rr.Body.String(); got != goldenMetrics {
		t.Errorf("metrics exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, goldenMetrics)
	}
}

func writeManifest(t *testing.T, dir, name string, mutate func(*obs.Manifest)) {
	t.Helper()
	m := &obs.Manifest{
		Schema: obs.ManifestSchema,
		App:    "stream",
		Config: obs.RunInfo{
			Machine: "a64fx", Procs: 4, Threads: 12,
			Alloc: "block", Bind: "stride1",
			Compiler: "as-is", Size: "test", Seed: 20210901,
		},
		Verified:    true,
		TimeSeconds: 0.25,
		GFlops:      123.4,
	}
	if mutate != nil {
		mutate(m)
	}
	if err := m.WriteFile(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

func TestRunsListingAndFetch(t *testing.T) {
	s, h := testServer(t)
	writeManifest(t, s.manifestDir, "a.json", nil)
	writeManifest(t, s.manifestDir, "b.json", func(m *obs.Manifest) {
		m.App = "mvmc"
		m.Verified = false
	})
	// A corrupt file must be skipped, not kill the listing.
	if err := os.WriteFile(filepath.Join(s.manifestDir, "junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/runs", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/runs = %d: %s", rr.Code, rr.Body.String())
	}
	var entries []runEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].File != "a.json" || entries[1].App != "mvmc" {
		t.Errorf("listing = %+v", entries)
	}
	if entries[0].Config != "a64fx 4x12 as-is test" {
		t.Errorf("config label = %q", entries[0].Config)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/runs/a.json", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/runs/a.json = %d", rr.Code)
	}
	m, err := obs.ParseManifest(rr.Body)
	if err != nil || m.App != "stream" {
		t.Errorf("served manifest does not parse back: %v %+v", err, m)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/runs/nope.json", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("missing manifest = %d, want 404", rr.Code)
	}

	// Path traversal must be rejected, not resolved.
	rr = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/runs/name", nil)
	req.SetPathValue("name", "../a.json")
	s.handleRun(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("traversal name = %d, want 400", rr.Code)
	}

	// The corrupt manifest surfaced in the error counter.
	if c := s.reg.Counter("fiberd_manifest_errors_total", "", nil).Value(); c != 1 {
		t.Errorf("manifest error counter = %g, want 1", c)
	}
}

func TestRunsLiveSSE(t *testing.T) {
	progress := filepath.Join(t.TempDir(), "sweep.progress")
	s := newServer(obs.NewRegistry(), t.TempDir(), progress, 5*time.Millisecond, nil, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	row := func(done int) string {
		p := &obs.SweepProgress{
			Schema: obs.ProgressSchema,
			App:    "stream", Machine: "a64fx", Procs: 4, Threads: 12,
			Compiler: "as-is", Size: "test",
			Done: done, Total: 6,
			TimeSeconds: 0.25, GFlops: 80, Verified: true,
		}
		var b strings.Builder
		if err := p.Encode(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	// One complete row, one torn tail: only the complete row streams.
	if err := os.WriteFile(progress, []byte(row(1)+`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/runs/live", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	readEvent := func() (string, string) {
		var event, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && event != "":
				return event, data
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return "", ""
	}

	event, data := readEvent()
	if event != "run" {
		t.Fatalf("event = %q", event)
	}
	p, err := obs.ParseProgress([]byte(data))
	if err != nil || p.Done != 1 {
		t.Fatalf("first event = %+v, err %v", p, err)
	}

	// Complete the torn line and append another row; both must arrive.
	f, err := os.OpenFile(progress, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\"}\n" + row(2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	event, data = readEvent()
	if event != "run" {
		t.Fatalf("second event = %q", event)
	}
	if p, err = obs.ParseProgress([]byte(data)); err != nil || p.Done != 2 {
		t.Fatalf("second event = %+v, err %v (the healed torn line must be skipped, row 2 delivered)", p, err)
	}
	cancel()
}

// TestRunsLiveNoGoroutineLeak opens a batch of /runs/live streams,
// drops each client mid-stream, and requires the goroutine count to
// settle back. Guards the SSE handler's exit paths: it must return on
// r.Context().Done() (client gone between ticks) and on a failed
// write (client gone mid-event), never loop on a dead connection.
func TestRunsLiveNoGoroutineLeak(t *testing.T) {
	progress := filepath.Join(t.TempDir(), "sweep.progress")
	if err := os.WriteFile(progress, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := newServer(obs.NewRegistry(), t.TempDir(), progress, time.Millisecond, nil, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/runs/live", nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Headers arrived: the handler goroutine is inside its poll
		// loop. Drop the client without reading any event.
		cancel()
		resp.Body.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.Gosched()
		// Allow a little slack for the server's own accept/idle
		// machinery; 20 leaked handlers would blow well past it.
		if n := runtime.NumGoroutine(); n <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := newServer(obs.NewRegistry(), t.TempDir(), "", time.Millisecond, nil, nil)
	done := make(chan int, 1)
	var errb strings.Builder
	go func() { done <- serve(ctx, "127.0.0.1:0", s.handler(), time.Second, &errb, nil) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("shutdown exit = %d\n%s", code, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not drain within 5s")
	}
	if !strings.Contains(errb.String(), "clean shutdown") {
		t.Errorf("missing shutdown log:\n%s", errb.String())
	}
}

func TestServeBadAddressFails(t *testing.T) {
	var errb strings.Builder
	s := newServer(obs.NewRegistry(), t.TempDir(), "", time.Millisecond, nil, nil)
	if code := serve(context.Background(), "256.0.0.1:bogus", s.handler(), time.Second, &errb, nil); code != 1 {
		t.Fatalf("bad address exit = %d\n%s", code, errb.String())
	}
}

func TestDebugRuntime(t *testing.T) {
	s, h := testServer(t)
	// Without -runtime-metrics the route does not exist at all.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/runtime", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("/debug/runtime without sampler = %d, want 404", rr.Code)
	}

	sampler, err := obs.NewRuntimeSampler(obs.RuntimeSamplerConfig{Registry: s.reg, Now: time.Now})
	if err != nil {
		t.Fatal(err)
	}
	s.sampler = sampler
	h = s.handler()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/runtime", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/runtime with sampler = %d, body %q", rr.Code, rr.Body.String())
	}
	var snap obs.RuntimeSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.SampledAt == "" || snap.Goroutines <= 0 || snap.AllocBytes == 0 {
		t.Errorf("snapshot looks empty: %+v", snap)
	}

	// The on-demand sample also populated the fibersim_runtime_*
	// families in the shared registry.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "fibersim_runtime_heap_live_bytes") {
		t.Error("/metrics lacks fibersim_runtime_* families after sampling")
	}
}
