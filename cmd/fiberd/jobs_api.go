package main

// This file is the job API: POST /jobs admits run specs into the
// bounded queue, GET /jobs and GET /jobs/{id} expose job state, and
// GET /readyz is the readiness half of the health split (liveness
// stays on /healthz: a process that answers at all is alive;
// readiness is a statement about whether it should receive traffic).

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"
	"fibersim/internal/tenant"
)

// maxSpecBytes bounds a POST /jobs body; a run spec is a handful of
// short fields, so anything bigger is garbage or abuse.
const maxSpecBytes = 1 << 20

// handleSubmitJob is the admission path: decode, validate (shallow +
// registry-deep), then let the manager decide. The status codes are
// the load-shedding contract:
//
//	202 accepted            (body: the job, including its id; a
//	                         coalesced duplicate returns the in-flight
//	                         job it attached to, with coalesced:true)
//	200 cached              (body: a completed job served from the
//	                         idempotent result cache; degraded:true
//	                         marks a stale answer served because fresh
//	                         execution was refused)
//	400 malformed spec
//	429 rate limited        (Retry-After: per-tenant token refill) or
//	    queue full          (Retry-After: estimated drain time),
//	    globally or for the submitting tenant's lane
//	503 breaker open        (Retry-After), draining, or no job engine
//
// When tracing is on, admission opens the request's root span (the
// "admission" phase of the trace). A traceparent request header makes
// the trace a child of the caller's; the response echoes the job's
// trace id both in the body (trace_id) and as a traceparent header so
// clients can fetch GET /traces/{id} later. On a 202 the span's
// ownership passes to the job manager, which ends it at the terminal
// journal write; on a shed or error the handler annotates the outcome
// and ends the span itself.
func (s *server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "job execution not configured", http.StatusServiceUnavailable)
		return
	}
	var span *obs.Span
	if s.tracer != nil {
		var remote obs.SpanContext
		if tp := r.Header.Get("traceparent"); tp != "" {
			// A malformed header is the caller's problem, not a reason
			// to refuse the job: fall back to a fresh root.
			remote, _ = obs.ParseTraceparent(tp)
		}
		span = s.tracer.StartTrace("job", remote)
		span.SetAttr("route", "/jobs")
	}
	reject := func(outcome, msg string, code int) {
		span.SetAttr("outcome", outcome)
		span.SetAttr("error", msg)
		span.End()
		s.log.Info("job rejected", "outcome", outcome, "status", code,
			"error", msg, "trace_id", traceIDOf(span))
		http.Error(w, msg, code)
	}
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		reject("bad-spec", fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		reject("bad-spec", err.Error(), http.StatusBadRequest)
		return
	}
	span.SetAttr("app", spec.App)
	if s.resolve != nil {
		if err := s.resolve(spec); err != nil {
			reject("unresolvable", err.Error(), http.StatusBadRequest)
			return
		}
	}
	// Per-tenant rate limit, checked only after the spec is known to be
	// valid: a limiter token is a claim on execution, not on parsing.
	if s.limiter != nil {
		key := tenant.Key(spec.Tenant)
		ok, retry := s.limiter.Allow(key)
		if s.reg != nil {
			s.reg.Gauge("fiberd_tenant_tokens", "Rate-limit tokens remaining per tenant.",
				obs.Labels{"tenant": key}).Set(s.limiter.Tokens(key))
		}
		if !ok {
			if s.reg != nil {
				s.reg.Counter("fiberd_tenant_shed_total",
					"Submissions shed at admission, per tenant and reason.",
					obs.Labels{"tenant": key, "reason": "rate_limit"}).Inc()
			}
			w.Header().Set("Retry-After", ceilSeconds(retry))
			reject("shed-rate-limit",
				fmt.Sprintf("tenant %s over rate limit", key), http.StatusTooManyRequests)
			return
		}
	}
	job, err := s.jobs.SubmitTraced(spec, span)
	switch {
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrTenantQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(s.jobs))
		reject("shed-queue-full", err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, jobs.ErrBreakerOpen):
		w.Header().Set("Retry-After", retryAfterSeconds(s.jobs))
		reject("shed-breaker-open", err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, jobs.ErrDraining):
		reject("shed-draining", err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		reject("rejected", err.Error(), http.StatusBadRequest)
		return
	}
	// Admitted, coalesced, or served from cache: the manager owns (and,
	// for the latter two, has already ended) the span. A cached serve
	// is complete — 200, the result is in the body; everything else is
	// 202, the job is (or was already) in flight.
	code := http.StatusAccepted
	switch {
	case job.Cached:
		code = http.StatusOK
		s.log.Info("job served from cache", "app", spec.App,
			"tenant", spec.Tenant, "degraded", job.Degraded,
			"age_seconds", job.CachedAgeSeconds, "trace_id", traceIDOf(span))
	case job.Coalesced:
		s.log.Info("job coalesced", "job_id", job.ID, "app", spec.App,
			"tenant", spec.Tenant, "trace_id", traceIDOf(span))
	default:
		s.log.Info("job accepted", "job_id", job.ID, "app", spec.App,
			"tenant", spec.Tenant, "trace_id", job.TraceID)
	}
	if sc := span.Context(); sc.Valid() {
		w.Header().Set("traceparent", sc.Traceparent())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(job); err != nil {
		return
	}
}

// traceIDOf renders a possibly-nil span's trace id for log lines.
func traceIDOf(span *obs.Span) string {
	sc := span.Context()
	if !sc.Valid() {
		return ""
	}
	return sc.TraceID.String()
}

// retryAfterSeconds renders the manager's drain estimate as the
// integral seconds the Retry-After header wants, at least 1.
func retryAfterSeconds(m *jobs.Manager) string {
	secs := int(m.RetryAfter().Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// ceilSeconds renders a wait as Retry-After seconds, rounded up so the
// client never retries a hair early, at least 1.
func ceilSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// defaultJobsLimit caps GET /jobs when no ?limit= is given: the
// listing used to return every job the daemon ever tracked, which
// grows without bound on a long-lived process.
const defaultJobsLimit = 100

// handleJobs lists tracked jobs in submission order, most recent
// defaultJobsLimit by default. ?limit=N widens or narrows the window
// (N <= 0 means unbounded); ?tenant=name filters to one tenant.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "job execution not configured", http.StatusServiceUnavailable)
		return
	}
	limit := defaultJobsLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad limit %q", v), http.StatusBadRequest)
			return
		}
		limit = n
	}
	var tenantKey string
	if v := r.URL.Query().Get("tenant"); v != "" {
		tenantKey = tenant.Key(v)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	list := s.jobs.JobsFiltered(tenantKey, limit)
	if list == nil {
		list = []jobs.Job{}
	}
	if err := enc.Encode(list); err != nil {
		return
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "job execution not configured", http.StatusServiceUnavailable)
		return
	}
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(job); err != nil {
		return
	}
}

// readiness is the /readyz body: the overall verdict plus every
// breaker key whose circuit is not closed, so a dashboard (or a
// human) can see which (app, machine) pairs are degraded without
// parsing /metrics.
type readiness struct {
	Status string `json:"status"` // ready | degraded | draining
	// Breakers lists non-closed breakers as key → state.
	Breakers map[string]string `json:"breakers,omitempty"`
	// QueueDepth is the current admission backlog.
	QueueDepth int `json:"queue_depth"`
}

// handleReadyz: 200 ready (all circuits closed), 200 degraded (some
// (app, machine) keys tripped — the rest of the service still takes
// traffic), 503 draining (SIGTERM received) or 503 when no job
// engine is configured at all (manifest-only mode still serves runs,
// but should not receive job traffic).
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.jobs == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"no-jobs"}`)
		return
	}
	rd := readiness{Status: "ready", QueueDepth: s.jobs.QueueDepth()}
	for _, b := range s.jobs.BreakerStates() {
		if b.State != jobs.BreakerClosed {
			if rd.Breakers == nil {
				rd.Breakers = map[string]string{}
			}
			rd.Breakers[b.Key] = b.State.String()
			rd.Status = "degraded"
		}
	}
	code := http.StatusOK
	if s.jobs.Draining() {
		rd.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(rd); err != nil {
		return
	}
}
