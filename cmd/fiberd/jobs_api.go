package main

// This file is the job API: POST /jobs admits run specs into the
// bounded queue, GET /jobs and GET /jobs/{id} expose job state, and
// GET /readyz is the readiness half of the health split (liveness
// stays on /healthz: a process that answers at all is alive;
// readiness is a statement about whether it should receive traffic).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"fibersim/internal/jobs"
)

// maxSpecBytes bounds a POST /jobs body; a run spec is a handful of
// short fields, so anything bigger is garbage or abuse.
const maxSpecBytes = 1 << 20

// handleSubmitJob is the admission path: decode, validate (shallow +
// registry-deep), then let the manager decide. The status codes are
// the load-shedding contract:
//
//	202 accepted            (body: the job, including its id)
//	400 malformed spec
//	429 queue full          (Retry-After: estimated drain time)
//	503 breaker open        (Retry-After), draining, or no job engine
func (s *server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "job execution not configured", http.StatusServiceUnavailable)
		return
	}
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.resolve != nil {
		if err := s.resolve(spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	job, err := s.jobs.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(s.jobs))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, jobs.ErrBreakerOpen):
		w.Header().Set("Retry-After", retryAfterSeconds(s.jobs))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, jobs.ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	if err := json.NewEncoder(w).Encode(job); err != nil {
		return
	}
}

// retryAfterSeconds renders the manager's drain estimate as the
// integral seconds the Retry-After header wants, at least 1.
func retryAfterSeconds(m *jobs.Manager) string {
	secs := int(m.RetryAfter().Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	if s.jobs == nil {
		http.Error(w, "job execution not configured", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	list := s.jobs.Jobs()
	if list == nil {
		list = []jobs.Job{}
	}
	if err := enc.Encode(list); err != nil {
		return
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "job execution not configured", http.StatusServiceUnavailable)
		return
	}
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(job); err != nil {
		return
	}
}

// readiness is the /readyz body: the overall verdict plus every
// breaker key whose circuit is not closed, so a dashboard (or a
// human) can see which (app, machine) pairs are degraded without
// parsing /metrics.
type readiness struct {
	Status string `json:"status"` // ready | degraded | draining
	// Breakers lists non-closed breakers as key → state.
	Breakers map[string]string `json:"breakers,omitempty"`
	// QueueDepth is the current admission backlog.
	QueueDepth int `json:"queue_depth"`
}

// handleReadyz: 200 ready (all circuits closed), 200 degraded (some
// (app, machine) keys tripped — the rest of the service still takes
// traffic), 503 draining (SIGTERM received) or 503 when no job
// engine is configured at all (manifest-only mode still serves runs,
// but should not receive job traffic).
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.jobs == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"no-jobs"}`)
		return
	}
	rd := readiness{Status: "ready", QueueDepth: s.jobs.QueueDepth()}
	for _, b := range s.jobs.BreakerStates() {
		if b.State != jobs.BreakerClosed {
			if rd.Breakers == nil {
				rd.Breakers = map[string]string{}
			}
			rd.Breakers[b.Key] = b.State.String()
			rd.Status = "degraded"
		}
	}
	code := http.StatusOK
	if s.jobs.Draining() {
		rd.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(rd); err != nil {
		return
	}
}
