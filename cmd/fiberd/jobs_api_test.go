package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fibersim/internal/jobs"
	"fibersim/internal/obs"

	_ "fibersim/internal/miniapps/all"
)

// apiServer builds a server around a manager with the given runner.
// start=false leaves the worker pool unstarted so submitted jobs stay
// queued — that is how the tests pin admission-control behavior
// without racing execution.
func apiServer(t *testing.T, cfg jobs.Config, start bool) (*server, http.Handler, *jobs.Manager) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = func(context.Context, jobs.Spec) (jobs.Result, error) {
			return jobs.Result{TimeSeconds: 0.1, GFlops: 1, Verified: true}, nil
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	jm, err := jobs.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		jm.Start()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := jm.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		})
	}
	s := newServer(cfg.Registry, t.TempDir(), "", time.Millisecond, jm, resolveSpec)
	return s, s.handler(), jm
}

func postJob(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rr, req)
	return rr
}

// waitJobState polls GET /jobs/{id} until the job reaches a terminal
// state.
func waitJobState(t *testing.T, h http.Handler, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/"+id, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d: %s", id, rr.Code, rr.Body.String())
		}
		var job jobs.Job
		if err := json.Unmarshal(rr.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		if job.State.Terminal() {
			return job
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobs.Job{}
}

func TestSubmitJobLifecycle(t *testing.T) {
	_, h, _ := apiServer(t, jobs.Config{}, true)
	rr := postJob(t, h, `{"app":"stream"}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rr.Code, rr.Body.String())
	}
	var job jobs.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State != jobs.StateAccepted {
		t.Fatalf("accepted body = %+v", job)
	}
	done := waitJobState(t, h, job.ID)
	if done.State != jobs.StateDone || done.Result == nil || !done.Result.Verified {
		t.Errorf("terminal job = %+v", done)
	}

	// The finished job shows up in the listing.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs", nil))
	var list []jobs.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != job.ID {
		t.Errorf("listing = %+v", list)
	}
}

func TestSubmitJobRejectsBadSpecs(t *testing.T) {
	_, h, _ := apiServer(t, jobs.Config{}, false)
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"app":`},
		{"unknown field", `{"app":"stream","cloud":"aws"}`},
		{"missing app", `{}`},
		{"unknown app", `{"app":"fortnite"}`},
		{"unknown machine", `{"app":"stream","machine":"cray1"}`},
		{"oversubscribed", `{"app":"stream","procs":48,"threads":48}`},
		{"bad fault", `{"app":"stream","fault":"chaos=yes"}`},
	}
	for _, tc := range cases {
		if rr := postJob(t, h, tc.body); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400 (%s)", tc.name, rr.Code, rr.Body.String())
		}
	}
}

func TestSubmitJobShedsOnFullQueue(t *testing.T) {
	// Workers never started: the first job occupies the whole queue.
	_, h, _ := apiServer(t, jobs.Config{QueueCap: 1}, false)
	if rr := postJob(t, h, `{"app":"stream"}`); rr.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rr.Code)
	}
	rr := postJob(t, h, `{"app":"stream"}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429", rr.Code)
	}
	ra := rr.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	secs, err := json.Number(ra).Int64()
	if err != nil {
		t.Fatalf("Retry-After %q is not integral seconds: %v", ra, err)
	}
	if secs < 1 {
		t.Errorf("Retry-After = %d, want >= 1", secs)
	}
}

func TestSubmitJobWhileDraining(t *testing.T) {
	_, h, jm := apiServer(t, jobs.Config{}, true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := jm.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rr := postJob(t, h, `{"app":"stream"}`); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("draining submit = %d, want 503", rr.Code)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "draining") {
		t.Errorf("/readyz while draining = %d %s", rr.Code, rr.Body.String())
	}
}

func TestSubmitJobBreakerOpen(t *testing.T) {
	boom := errors.New("node on fire")
	_, h, _ := apiServer(t, jobs.Config{
		Runner: func(context.Context, jobs.Spec) (jobs.Result, error) {
			return jobs.Result{}, boom
		},
		MaxRetries:       0,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	}, true)

	rr := postJob(t, h, `{"app":"stream"}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rr.Code)
	}
	var job jobs.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	failed := waitJobState(t, h, job.ID)
	if failed.State != jobs.StateFailed || !strings.Contains(failed.Err, "node on fire") {
		t.Fatalf("failed job = %+v", failed)
	}

	// One failure tripped the stream|a64fx breaker: readiness degrades
	// and further submissions for the key shed with 503 + Retry-After.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/readyz degraded = %d, want 200 (degraded still serves)", rr.Code)
	}
	var rd readiness
	if err := json.Unmarshal(rr.Body.Bytes(), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Status != "degraded" || rd.Breakers["stream|a64fx"] != "open" {
		t.Errorf("readiness = %+v", rd)
	}

	rr = postJob(t, h, `{"app":"stream"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open submit = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 breaker response without Retry-After")
	}

	// A different (app, machine) key is unaffected by the tripped one.
	if rr := postJob(t, h, `{"app":"mvmc"}`); rr.Code != http.StatusAccepted {
		t.Errorf("independent key submit = %d, want 202", rr.Code)
	}
}

func TestReadyzReady(t *testing.T) {
	_, h, _ := apiServer(t, jobs.Config{}, false)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/readyz = %d", rr.Code)
	}
	var rd readiness
	if err := json.Unmarshal(rr.Body.Bytes(), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Status != "ready" || len(rd.Breakers) != 0 {
		t.Errorf("readiness = %+v", rd)
	}
}

func TestJobsAPIWithoutEngine(t *testing.T) {
	// Manifest-only mode: no manager wired at all.
	s := newServer(obs.NewRegistry(), t.TempDir(), "", time.Millisecond, nil, nil)
	h := s.handler()
	for _, req := range []*http.Request{
		httptest.NewRequest("POST", "/jobs", strings.NewReader(`{"app":"stream"}`)),
		httptest.NewRequest("GET", "/jobs", nil),
		httptest.NewRequest("GET", "/jobs/job-000001", nil),
		httptest.NewRequest("GET", "/readyz", nil),
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s = %d, want 503", req.Method, req.URL.Path, rr.Code)
		}
	}
}

func TestJobNotFound(t *testing.T) {
	_, h, _ := apiServer(t, jobs.Config{}, false)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/job-999999", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("missing job = %d, want 404", rr.Code)
	}
}

// TestRunSpecRunnerExecutes pins the production runner: a resolved
// spec actually runs a miniapp, reports a plausible result, and — with
// a save directory — leaves a valid manifest behind.
func TestRunSpecRunnerExecutes(t *testing.T) {
	dir := t.TempDir()
	logger := slog.New(slog.NewJSONHandler(io.Discard, nil))
	run := newRunner(dir, logger)
	res, err := run(context.Background(), jobs.Spec{App: "stream"})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeSeconds <= 0 || !res.Verified {
		t.Errorf("runner result = %+v", res)
	}
	names, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("saved manifests = %v, err %v, want exactly one", names, err)
	}
	if m, err := obs.ReadManifestFile(names[0]); err != nil || m.App != "stream" {
		t.Errorf("saved manifest invalid: %v %+v", err, m)
	}
	if _, err := run(context.Background(), jobs.Spec{App: "fortnite"}); err == nil {
		t.Error("unknown app did not error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := run(ctx, jobs.Spec{App: "stream"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled runner err = %v", err)
	}
}
