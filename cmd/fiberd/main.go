// Command fiberd is the long-running simulation service: it executes
// submitted run specs through a resilient job engine, exposes serving
// metrics in the Prometheus text format, lists and serves run
// manifests from a directory, and streams live sweep progress over
// Server-Sent Events.
//
//	fiberd -addr :8080 -manifests runs -journal jobs.journal
//
// Endpoints:
//
//	GET  /healthz     liveness probe (the process answers)
//	GET  /readyz      readiness probe (ready | degraded | draining)
//	GET  /metrics     Prometheus exposition of serving metrics
//	POST /jobs        submit a run spec; 202 + job id, 429/503 on shed
//	GET  /jobs        list jobs
//	GET  /jobs/{id}   one job's state
//	GET  /runs        JSON listing of the manifest directory
//	GET  /runs/{name} one manifest, parsed and validated
//	GET  /runs/live   SSE stream of fibersweep -progress output
//
// Every job state transition is appended to the -journal JSONL file
// (schema fibersim/job-journal/v1). The journal is torn-tail-tolerant:
// a SIGKILL'd daemon replays it on restart and re-queues incomplete
// jobs exactly once, so no accepted job is ever lost or completed
// twice. On SIGINT/SIGTERM fiberd drains gracefully: it refuses new
// work, finishes running jobs, persists the queue and syncs the
// journal before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fibersim/internal/harness"
	"fibersim/internal/jobs"
	"fibersim/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	manifests := flag.String("manifests", "runs", "directory of run manifests to serve")
	progress := flag.String("progress", "", "sweep progress file (JSONL) to stream on /runs/live")
	poll := flag.Duration("poll", 500*time.Millisecond, "progress file poll interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain window")
	journalPath := flag.String("journal", "", "job journal path (JSONL, crash-safe); empty keeps job state in memory only")
	journalMTBF := flag.Duration("journal-mtbf", 0, "assumed daemon MTBF; >0 derives the journal fsync cadence from Daly's checkpoint model instead of syncing every record")
	queueCap := flag.Int("queue", 64, "admission queue bound; submissions beyond it get 429")
	workers := flag.Int("workers", 2, "job worker pool size")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt job deadline")
	jobRetries := flag.Int("job-retries", 2, "default and ceiling for per-job retries")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that trip an (app, machine) circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker refuses work before probing")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	var journal *jobs.Journal
	var recovered []jobs.Record
	if *journalPath != "" {
		var err error
		journal, recovered, err = jobs.OpenJournal(*journalPath, jobs.SyncInterval(time.Millisecond, *journalMTBF))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiberd:", err)
			os.Exit(1)
		}
	}
	manager, err := jobs.NewManager(jobs.Config{
		Runner:           runSpec,
		QueueCap:         *queueCap,
		Workers:          *workers,
		JobTimeout:       *jobTimeout,
		MaxRetries:       *jobRetries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Journal:          journal,
		Registry:         reg,
		Logf:             logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiberd:", err)
		os.Exit(1)
	}
	manager.Recover(recovered)
	manager.Start()

	s := newServer(reg, *manifests, *progress, *poll, manager, resolveSpec)
	code := serve(ctx, *addr, s.handler(), *drain, os.Stderr, manager)
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fiberd: journal close:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// toRunSpec maps the job engine's transport-level Spec onto the
// harness resolver.
func toRunSpec(spec jobs.Spec) harness.RunSpec {
	return harness.RunSpec{
		App: spec.App, Machine: spec.Machine,
		Procs: spec.Procs, Threads: spec.Threads,
		Compiler: spec.Compiler, Size: spec.Size, Fault: spec.Fault,
	}
}

// resolveSpec is the admission-time deep validation: a spec that does
// not resolve is a 400 at POST, not a failed job.
func resolveSpec(spec jobs.Spec) error {
	_, _, err := toRunSpec(spec).Resolve()
	return err
}

// runSpec executes one attempt through the harness/miniapps path. The
// simulation itself is not cancellable, so ctx is consulted only at
// the door — the manager's deadline guard handles runaway attempts by
// abandonment.
func runSpec(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
	if err := ctx.Err(); err != nil {
		return jobs.Result{}, err
	}
	app, rc, err := toRunSpec(spec).Resolve()
	if err != nil {
		return jobs.Result{}, err
	}
	res, err := app.Run(rc)
	if err != nil {
		return jobs.Result{}, err
	}
	return jobs.Result{TimeSeconds: res.Time, GFlops: res.GFlops(), Verified: res.Verified}, nil
}

// serve runs the HTTP server until the context is cancelled (signal)
// or the listener fails, then drains gracefully: the job manager
// stops admission and finishes running jobs while the HTTP server
// completes in-flight requests, both bounded by the drain window. It
// returns the process exit code rather than calling os.Exit so tests
// can drive it.
func serve(ctx context.Context, addr string, h http.Handler, drain time.Duration, stderr io.Writer, manager *jobs.Manager) int {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stderr, "fiberd: listening on %s\n", addr)

	select {
	case err := <-errc:
		// The listener died on its own (bad address, port in use).
		fmt.Fprintf(stderr, "fiberd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	code := 0
	// Drain jobs and HTTP concurrently: admission flips to refusing
	// immediately, running jobs and in-flight requests get the window.
	jobsDrained := make(chan error, 1)
	go func() {
		if manager == nil {
			jobsDrained <- nil
			return
		}
		jobsDrained <- manager.Drain(shutCtx)
	}()
	if err := srv.Shutdown(shutCtx); err != nil {
		// Drain window expired with requests still in flight.
		fmt.Fprintf(stderr, "fiberd: shutdown: %v\n", err)
		code = 1
	}
	if err := <-jobsDrained; err != nil {
		fmt.Fprintf(stderr, "fiberd: job drain: %v\n", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "fiberd: %v\n", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(stderr, "fiberd: clean shutdown")
	}
	return code
}
