// Command fiberd is the long-running observability daemon: it exposes
// serving metrics in the Prometheus text format, lists and serves run
// manifests from a directory, and streams live sweep progress over
// Server-Sent Events.
//
//	fiberd -addr :8080 -manifests runs -progress sweep.progress
//
// Endpoints:
//
//	GET /healthz     liveness probe
//	GET /metrics     Prometheus exposition of fiberd's own serving metrics
//	GET /runs        JSON listing of the manifest directory
//	GET /runs/{name} one manifest, parsed and validated
//	GET /runs/live   SSE stream of fibersweep -progress output
//
// fiberd shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window before the listener is torn down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	manifests := flag.String("manifests", "runs", "directory of run manifests to serve")
	progress := flag.String("progress", "", "sweep progress file (JSONL) to stream on /runs/live")
	poll := flag.Duration("poll", 500*time.Millisecond, "progress file poll interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain window")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := newServer(*manifests, *progress, *poll)
	os.Exit(serve(ctx, *addr, s.handler(), *drain, os.Stderr))
}

// serve runs the HTTP server until the context is cancelled (signal)
// or the listener fails, then drains gracefully. It returns the
// process exit code rather than calling os.Exit so tests can drive it.
func serve(ctx context.Context, addr string, h http.Handler, drain time.Duration, stderr io.Writer) int {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stderr, "fiberd: listening on %s\n", addr)

	select {
	case err := <-errc:
		// The listener died on its own (bad address, port in use).
		fmt.Fprintf(stderr, "fiberd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(shutCtx); err != nil {
		// Drain window expired with requests still in flight.
		fmt.Fprintf(stderr, "fiberd: shutdown: %v\n", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "fiberd: %v\n", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(stderr, "fiberd: clean shutdown")
	}
	return code
}
