// Command fiberd is the long-running simulation service: it executes
// submitted run specs through a resilient job engine, exposes serving
// metrics in the Prometheus text format, lists and serves run
// manifests from a directory, and streams live sweep progress over
// Server-Sent Events.
//
//	fiberd -addr :8080 -manifests runs -journal jobs.journal
//
// Endpoints:
//
//	GET  /healthz     liveness probe (the process answers)
//	GET  /readyz      readiness probe (ready | degraded | draining)
//	GET  /metrics     Prometheus exposition of serving metrics
//	POST /jobs        submit a run spec; 202 + job id (200 when served
//	                  from the result cache), 429/503 on shed
//	GET  /jobs        list jobs (?limit=N, ?tenant=name; newest 100
//	                  by default)
//	GET  /jobs/{id}   one job's state
//	GET  /runs        JSON listing of the manifest directory
//	GET  /runs/{name} one manifest, parsed and validated
//	GET  /runs/live   SSE stream of fibersweep -progress output
//	GET  /debug/runtime  JSON snapshot of the process's own Go runtime
//	                  telemetry (with -runtime-metrics, which also adds
//	                  fibersim_runtime_* families to /metrics)
//
// Every job state transition is appended to the -journal JSONL file
// (schema fibersim/job-journal/v2; v1 files replay cleanly). The
// journal is torn-tail-tolerant: a SIGKILL'd daemon replays it on
// restart and re-queues incomplete jobs exactly once, so no accepted
// job is ever lost or completed twice. With -journal-retention set,
// startup first compacts the journal, dropping jobs settled longer ago
// than the retention. On SIGINT/SIGTERM fiberd drains gracefully: it
// refuses new work, finishes running jobs, persists the queue and
// syncs the journal before exiting.
//
// Multi-tenant overload protection: specs may carry a tenant name;
// -tenant-rate/-tenant-burst rate-limit each tenant's submissions
// (429 + Retry-After), -tenant-override gives named tenants their own
// buckets ("vip=10:40", usable with or without a default -tenant-rate),
// -tenant-queue bounds each tenant's share of the
// admission queue, and -tenant-weights sets the weighted fair-queueing
// shares workers drain tenants by. -result-cache enables idempotent
// result serving: duplicate specs coalesce onto the in-flight job, and
// completed specs are answered from the cache — including, marked
// degraded, when a breaker is open or the queue is saturated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fibersim/internal/harness"
	"fibersim/internal/jobs"
	"fibersim/internal/obs"
	"fibersim/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	manifests := flag.String("manifests", "runs", "directory of run manifests to serve")
	progress := flag.String("progress", "", "sweep progress file (JSONL) to stream on /runs/live")
	poll := flag.Duration("poll", 500*time.Millisecond, "progress file poll interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain window")
	journalPath := flag.String("journal", "", "job journal path (JSONL, crash-safe); empty keeps job state in memory only")
	journalMTBF := flag.Duration("journal-mtbf", 0, "assumed daemon MTBF; >0 derives the journal fsync cadence from Daly's checkpoint model instead of syncing every record")
	queueCap := flag.Int("queue", 64, "admission queue bound; submissions beyond it get 429")
	workers := flag.Int("workers", 2, "job worker pool size")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt job deadline")
	jobRetries := flag.Int("job-retries", 2, "default and ceiling for per-job retries")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that trip an (app, machine) circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker refuses work before probing")
	journalRetention := flag.Duration("journal-retention", 0, "compact the journal on startup, dropping jobs settled longer ago than this; 0 never compacts")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant submission rate limit in requests/second; 0 disables rate limiting")
	tenantBurst := flag.Float64("tenant-burst", 8, "per-tenant token-bucket burst (max back-to-back submissions)")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant lane bound within the admission queue; 0 applies only the global -queue bound")
	tenantWeights := flag.String("tenant-weights", "", "WDRR tenant weights, e.g. 'alice:3,bob'; unlisted tenants get weight 1")
	resultCache := flag.String("result-cache", "", "idempotent result cache: a perfdb JSONL path, 'mem' for in-memory only, or empty to disable")
	traceCap := flag.Int("trace-ring", 256, "finished service traces kept in memory for GET /traces; oldest evicted first")
	saveManifests := flag.Bool("save-manifests", false, "write each completed job's run manifest into the -manifests directory")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	runtimeMetrics := flag.Bool("runtime-metrics", false, "sample Go runtime telemetry into /metrics (fibersim_runtime_* families) and mount GET /debug/runtime")
	runtimeInterval := flag.Duration("runtime-interval", 10*time.Second, "background runtime-telemetry sampling cadence (with -runtime-metrics)")
	var tenantOverrides overrideFlag
	flag.Var(&tenantOverrides, "tenant-override", `per-tenant bucket override "name=rate:burst" (repeatable; comma lists allowed; rate 0 = unlimited)`)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	logf := func(format string, args ...any) {
		logger.Warn(fmt.Sprintf(format, args...))
	}
	hub := newEventHub()
	tracer, err := obs.NewTracer(obs.TracerConfig{
		Now:      time.Now,
		Seed:     time.Now().UnixNano(),
		Capacity: *traceCap,
		OnSpanEnd: func(sc obs.SpanContext, rec obs.SpanRecord) {
			hub.publish("trace:"+sc.TraceID.String(), jobEvent{
				Type: "span", Span: &rec, TraceID: sc.TraceID.String(),
			})
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiberd:", err)
		os.Exit(1)
	}

	var journal *jobs.Journal
	var recovered []jobs.Record
	if *journalPath != "" {
		if *journalRetention > 0 {
			// Compaction runs before the journal opens for appending:
			// a rewrite under an open O_APPEND handle would race it.
			kept, dropped, cerr := jobs.CompactJournal(*journalPath, *journalRetention, time.Now())
			if cerr != nil {
				fmt.Fprintln(os.Stderr, "fiberd: journal compaction:", cerr)
				os.Exit(1)
			}
			logger.Info("journal compacted", "path", *journalPath,
				"kept", kept, "dropped", dropped, "retention", journalRetention.String())
		}
		journal, recovered, err = jobs.OpenJournal(*journalPath, jobs.SyncInterval(time.Millisecond, *journalMTBF))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiberd:", err)
			os.Exit(1)
		}
	}
	var cache *jobs.ResultCache
	if *resultCache != "" {
		cachePath := *resultCache
		if cachePath == "mem" {
			cachePath = ""
		}
		cache, err = jobs.OpenResultCache(cachePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiberd: result cache:", err)
			os.Exit(1)
		}
	}
	var weights map[string]int
	if *tenantWeights != "" {
		ws, werr := tenant.ParseWeights(*tenantWeights)
		if werr != nil {
			fmt.Fprintln(os.Stderr, "fiberd:", werr)
			os.Exit(1)
		}
		weights = tenant.Map(ws)
	}
	saveDir := ""
	if *saveManifests {
		saveDir = *manifests
	}
	manager, err := jobs.NewManager(jobs.Config{
		Runner:           newRunner(saveDir, logger),
		QueueCap:         *queueCap,
		TenantQueueCap:   *tenantQueue,
		TenantWeights:    weights,
		Cache:            cache,
		Workers:          *workers,
		JobTimeout:       *jobTimeout,
		MaxRetries:       *jobRetries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Journal:          journal,
		Registry:         reg,
		Logf:             logf,
		OnTransition: func(job jobs.Job) {
			hub.publish("job:"+job.ID, jobEvent{Type: "state", Job: &job})
			logger.Info("job transition", "job_id", job.ID, "state", string(job.State),
				"attempt", job.Attempt, "error", job.Err, "trace_id", job.TraceID)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiberd:", err)
		os.Exit(1)
	}
	manager.Recover(recovered)
	manager.Start()

	s := newServer(reg, *manifests, *progress, *poll, manager, resolveSpec)
	s.tracer = tracer
	s.events = hub
	s.log = logger
	s.pprofOn = *pprofOn
	if *tenantRate > 0 || len(tenantOverrides) > 0 {
		// -tenant-override without -tenant-rate still needs a limiter:
		// the default bucket stays unlimited (rate 0) and only the named
		// tenants get buckets.
		s.limiter, err = tenant.NewLimiter(tenant.Bucket{Rate: *tenantRate, Burst: *tenantBurst}, time.Now)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiberd:", err)
			os.Exit(1)
		}
		for _, o := range tenantOverrides {
			s.limiter.SetBucket(o.Name, o.Bucket)
		}
	}
	if *runtimeMetrics {
		sampler, serr := obs.NewRuntimeSampler(obs.RuntimeSamplerConfig{Registry: reg, Now: time.Now})
		if serr != nil {
			fmt.Fprintln(os.Stderr, "fiberd:", serr)
			os.Exit(1)
		}
		s.sampler = sampler
		go sampler.Run(ctx.Done(), *runtimeInterval)
	}
	code := serve(ctx, *addr, s.handler(), *drain, os.Stderr, manager)
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fiberd: journal close:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// overrideFlag accumulates repeated -tenant-override values; each
// occurrence may itself be a comma list (tenant.ParseOverrides).
type overrideFlag []tenant.Override

func (f *overrideFlag) String() string {
	var parts []string
	for _, o := range *f {
		parts = append(parts, fmt.Sprintf("%s=%g:%g", o.Name, o.Bucket.Rate, o.Bucket.Burst))
	}
	return strings.Join(parts, ",")
}

func (f *overrideFlag) Set(s string) error {
	ovs, err := tenant.ParseOverrides(s)
	if err != nil {
		return err
	}
	for _, o := range ovs {
		for _, have := range *f {
			if have.Name == o.Name {
				return fmt.Errorf("tenant: tenant %q overridden twice", o.Name)
			}
		}
	}
	*f = append(*f, ovs...)
	return nil
}

// toRunSpec maps the job engine's transport-level Spec onto the
// harness resolver.
func toRunSpec(spec jobs.Spec) harness.RunSpec {
	return harness.RunSpec{
		App: spec.App, Machine: spec.Machine,
		Procs: spec.Procs, Threads: spec.Threads,
		Compiler: spec.Compiler, Size: spec.Size, Fault: spec.Fault,
	}
}

// resolveSpec is the admission-time deep validation: a spec that does
// not resolve is a 400 at POST, not a failed job.
func resolveSpec(spec jobs.Spec) error {
	_, _, err := toRunSpec(spec).Resolve()
	return err
}

// newRunner builds the manager's Runner: each attempt goes through
// harness.RunSpec.Execute, which hangs a "run" span under the attempt
// span riding ctx and returns the full run manifest. With saveDir set,
// the manifest lands there as run-<span id>.json (the run span's id is
// unique per attempt) so GET /runs serves service-executed runs too,
// each carrying the trace link back to its request. The simulation
// itself is not cancellable, so ctx is consulted only at the door —
// the manager's deadline guard handles runaway attempts by
// abandonment.
func newRunner(saveDir string, logger *slog.Logger) jobs.Runner {
	return func(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
		doc, err := toRunSpec(spec).Execute(ctx)
		if err != nil {
			return jobs.Result{}, err
		}
		if saveDir != "" {
			name := manifestName(doc)
			if werr := doc.WriteFile(filepath.Join(saveDir, name)); werr != nil {
				// A failed manifest write degrades observability, not
				// the job: the result still flows back to the caller.
				logger.Warn("manifest write failed", "file", name, "error", werr.Error())
			}
		}
		return jobs.Result{TimeSeconds: doc.TimeSeconds, GFlops: doc.GFlops, Verified: doc.Verified}, nil
	}
}

// manifestName picks a collision-free file name for a saved manifest:
// the run span id is unique per traced attempt; untraced runs fall
// back to a timestamp.
func manifestName(doc *obs.Manifest) string {
	if doc.Trace != nil {
		return "run-" + doc.Trace.SpanID + ".json"
	}
	return "run-" + time.Now().UTC().Format("20060102T150405.000000000") + ".json"
}

// serve runs the HTTP server until the context is cancelled (signal)
// or the listener fails, then drains gracefully: the job manager
// stops admission and finishes running jobs while the HTTP server
// completes in-flight requests, both bounded by the drain window. It
// returns the process exit code rather than calling os.Exit so tests
// can drive it. Operational lines go to stderr as JSON (log/slog),
// matching the per-request and per-transition logs.
func serve(ctx context.Context, addr string, h http.Handler, drain time.Duration, stderr io.Writer, manager *jobs.Manager) int {
	logger := slog.New(slog.NewJSONHandler(stderr, nil))
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", addr)

	select {
	case err := <-errc:
		// The listener died on its own (bad address, port in use).
		logger.Error("listener failed", "error", err.Error())
		return 1
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	code := 0
	// Drain jobs and HTTP concurrently: admission flips to refusing
	// immediately, running jobs and in-flight requests get the window.
	jobsDrained := make(chan error, 1)
	go func() {
		if manager == nil {
			jobsDrained <- nil
			return
		}
		jobsDrained <- manager.Drain(shutCtx)
	}()
	if err := srv.Shutdown(shutCtx); err != nil {
		// Drain window expired with requests still in flight.
		logger.Error("shutdown incomplete", "error", err.Error())
		code = 1
	}
	if err := <-jobsDrained; err != nil {
		logger.Error("job drain incomplete", "error", err.Error())
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "error", err.Error())
		code = 1
	}
	if code == 0 {
		logger.Info("clean shutdown")
	}
	return code
}
