package main

import (
	"testing"

	"fibersim/internal/arch"
	"fibersim/internal/harness"
)

func TestDecompsFor(t *testing.T) {
	m := arch.MustLookup("a64fx")
	ds := decompsFor(m)
	if len(ds) == 0 {
		t.Fatal("no decompositions")
	}
	seen48 := false
	for _, d := range ds {
		if d[0]*d[1] != 48 {
			t.Errorf("decomposition %v does not cover 48 cores", d)
		}
		if d[0] == 48 {
			seen48 = true
		}
	}
	if !seen48 {
		t.Error("48x1 missing")
	}
	// K computer: 8 cores.
	for _, d := range decompsFor(arch.MustLookup("k")) {
		if d[0]*d[1] != 8 {
			t.Errorf("K decomposition %v", d)
		}
	}
}

func TestParseCompilerNames(t *testing.T) {
	for _, name := range []string{"as-is", "nosimd", "simd", "sched", "tuned"} {
		if _, err := harness.ParseCompiler(name); err != nil {
			t.Errorf("ParseCompiler(%q): %v", name, err)
		}
	}
	if _, err := harness.ParseCompiler("O3"); err == nil {
		t.Error("unknown config must fail")
	}
}

func TestParseTraceSelector(t *testing.T) {
	cases := []struct {
		app, config string
		wantErr     bool
		sel         traceSelector
	}{
		{"", "", false, traceSelector{}},
		{"stream", "", false, traceSelector{app: "stream"}},
		{"", "4x12", false, traceSelector{decomp: "4x12"}},
		{"", "a64fx:4x12", false, traceSelector{machine: "a64fx", decomp: "4x12"}},
		{"", "a64fx:4x12:tuned", false, traceSelector{machine: "a64fx", decomp: "4x12", compiler: "tuned"}},
		{"", "a:b:c:d", true, traceSelector{}},
		{"", "nodecomp", true, traceSelector{}},
	}
	for _, tc := range cases {
		sel, err := parseTraceSelector(tc.app, tc.config)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseTraceSelector(%q, %q): want error", tc.app, tc.config)
			}
			continue
		}
		if err != nil || sel != tc.sel {
			t.Errorf("parseTraceSelector(%q, %q) = %+v, %v; want %+v",
				tc.app, tc.config, sel, err, tc.sel)
		}
	}
}

func TestTraceSelectorMatches(t *testing.T) {
	sel := traceSelector{app: "stream", machine: "a64fx", decomp: "4x12", compiler: "tuned"}
	if !sel.matches("stream", "a64fx", [2]int{4, 12}, "tuned") {
		t.Error("exact selector must match")
	}
	if sel.matches("mvmc", "a64fx", [2]int{4, 12}, "tuned") {
		t.Error("wrong app must not match")
	}
	if sel.matches("stream", "a64fx", [2]int{2, 24}, "tuned") {
		t.Error("wrong decomposition must not match")
	}
	if !(traceSelector{}).matches("anything", "skylake", [2]int{1, 1}, "as-is") {
		t.Error("zero selector is a wildcard")
	}
}
