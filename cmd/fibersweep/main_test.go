package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fibersim/internal/arch"
	"fibersim/internal/core"
	"fibersim/internal/harness"
	"fibersim/internal/miniapps/common"
)

func TestDecompsFor(t *testing.T) {
	m := arch.MustLookup("a64fx")
	ds := decompsFor(m)
	if len(ds) == 0 {
		t.Fatal("no decompositions")
	}
	seen48 := false
	for _, d := range ds {
		if d[0]*d[1] != 48 {
			t.Errorf("decomposition %v does not cover 48 cores", d)
		}
		if d[0] == 48 {
			seen48 = true
		}
	}
	if !seen48 {
		t.Error("48x1 missing")
	}
	// K computer: 8 cores.
	for _, d := range decompsFor(arch.MustLookup("k")) {
		if d[0]*d[1] != 8 {
			t.Errorf("K decomposition %v", d)
		}
	}
}

func TestParseCompilerNames(t *testing.T) {
	for _, name := range []string{"as-is", "nosimd", "simd", "sched", "tuned"} {
		if _, err := harness.ParseCompiler(name); err != nil {
			t.Errorf("ParseCompiler(%q): %v", name, err)
		}
	}
	if _, err := harness.ParseCompiler("O3"); err == nil {
		t.Error("unknown config must fail")
	}
}

func TestParseTraceSelector(t *testing.T) {
	cases := []struct {
		app, config string
		wantErr     bool
		sel         traceSelector
	}{
		{"", "", false, traceSelector{}},
		{"stream", "", false, traceSelector{app: "stream"}},
		{"", "4x12", false, traceSelector{decomp: "4x12"}},
		{"", "a64fx:4x12", false, traceSelector{machine: "a64fx", decomp: "4x12"}},
		{"", "a64fx:4x12:tuned", false, traceSelector{machine: "a64fx", decomp: "4x12", compiler: "tuned"}},
		{"", "a:b:c:d", true, traceSelector{}},
		{"", "nodecomp", true, traceSelector{}},
	}
	for _, tc := range cases {
		sel, err := parseTraceSelector(tc.app, tc.config)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseTraceSelector(%q, %q): want error", tc.app, tc.config)
			}
			continue
		}
		if err != nil || sel != tc.sel {
			t.Errorf("parseTraceSelector(%q, %q) = %+v, %v; want %+v",
				tc.app, tc.config, sel, err, tc.sel)
		}
	}
}

func TestTraceSelectorMatches(t *testing.T) {
	sel := traceSelector{app: "stream", machine: "a64fx", decomp: "4x12", compiler: "tuned"}
	if !sel.matches("stream", "a64fx", [2]int{4, 12}, "tuned") {
		t.Error("exact selector must match")
	}
	if sel.matches("mvmc", "a64fx", [2]int{4, 12}, "tuned") {
		t.Error("wrong app must not match")
	}
	if sel.matches("stream", "a64fx", [2]int{2, 24}, "tuned") {
		t.Error("wrong decomposition must not match")
	}
	if !(traceSelector{}).matches("anything", "skylake", [2]int{1, 1}, "as-is") {
		t.Error("zero selector is a wildcard")
	}
}

// flakyApp is a stub miniapp whose Run panics or fails a configurable
// number of times before succeeding.
type flakyApp struct {
	failures *int // decremented per attempt; <=0 means succeed
	panics   bool
}

func (flakyApp) Name() string                      { return "flaky" }
func (flakyApp) Description() string               { return "test stub" }
func (flakyApp) Kernels(common.Size) []core.Kernel { return nil }
func (a flakyApp) Run(common.RunConfig) (common.Result, error) {
	if *a.failures > 0 {
		*a.failures--
		if a.panics {
			panic("synthetic miniapp panic")
		}
		return common.Result{}, errors.New("synthetic failure")
	}
	return common.Result{App: "flaky", Time: 1, Verified: true}, nil
}

func TestRunOneRecoversPanics(t *testing.T) {
	n := 1000 // never succeeds within the retry budget
	_, err := runOne(context.Background(), flakyApp{failures: &n, panics: true}, common.RunConfig{}, 0)
	if err == nil || !strings.Contains(err.Error(), "panic: synthetic miniapp panic") {
		t.Fatalf("want recovered panic error, got %v", err)
	}
}

func TestRunOneRetriesUntilSuccess(t *testing.T) {
	n := 2
	res, err := runOne(context.Background(), flakyApp{failures: &n}, common.RunConfig{}, 2)
	if err != nil {
		t.Fatalf("run should succeed on the third attempt: %v", err)
	}
	if !res.Verified || n != 0 {
		t.Fatalf("unexpected result %+v (failures left %d)", res, n)
	}
}

func TestRunOneExhaustsRetries(t *testing.T) {
	n := 5
	if _, err := runOne(context.Background(), flakyApp{failures: &n}, common.RunConfig{}, 1); err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if n != 5-2 {
		t.Fatalf("want exactly 2 attempts, %d failures left", n)
	}
}

// TestRunOneCancelAbortsBackoff pins the Ctrl-C contract: a cancelled
// context makes the backoff sleep return immediately, so a failing run
// surfaces its error after the in-flight attempt instead of sleeping
// out the remaining retry schedule.
func TestRunOneCancelAbortsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 1000
	if _, err := runOne(ctx, flakyApp{failures: &n}, common.RunConfig{}, 100); err == nil {
		t.Fatal("want the attempt's error, got nil")
	}
	if n != 999 {
		t.Fatalf("want exactly 1 attempt under a cancelled context, %d failures left", n)
	}
}

func TestSweepStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.state")
	s, err := loadState(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{
		"stream|a64fx|4x12|as-is": {"stream", "a64fx", "4x12", "as-is", "1ms"},
		"stream|a64fx|48x1|tuned": {"stream", "a64fx", "48x1", "tuned", "2ms"},
	}
	for k, cells := range rows {
		if err := s.record(k, cells); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	back, err := loadState(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if len(back.done) != len(rows) {
		t.Fatalf("reloaded %d rows, want %d", len(back.done), len(rows))
	}
	for k, cells := range rows {
		got, ok := back.done[k]
		if !ok || strings.Join(got, ",") != strings.Join(cells, ",") {
			t.Fatalf("row %q did not round-trip: %v", k, got)
		}
	}
}

func TestSweepStateTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.state")
	s, err := loadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.record("a|b|1x1|as-is", []string{"ok"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a kill mid-write: append half a JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c|d|2x2|as-`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back, err := loadState(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	defer back.Close()
	if len(back.done) != 1 {
		t.Fatalf("want the 1 intact row, got %d", len(back.done))
	}
	// The next record must land on a fresh line, not glued to the torn
	// fragment.
	if err := back.record("e|f|4x4|as-is", []string{"ok2"}); err != nil {
		t.Fatal(err)
	}
	back.Close()
	again, err := loadState(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if _, ok := again.done["e|f|4x4|as-is"]; !ok {
		t.Fatal("row recorded after a torn tail was lost")
	}
}

func TestSweepStateRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-checkpoint")
	if err := os.WriteFile(path, []byte("hello\nworld\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadState(path); err == nil {
		t.Fatal("loadState accepted a non-checkpoint file")
	}
}

func TestSweepStateEmptyPathDisabled(t *testing.T) {
	s, err := loadState("")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.record("k", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	if len(s.done) != 1 {
		t.Fatal("in-memory record must still dedupe")
	}
	s.Close()
}

func TestProgressRowFresh(t *testing.T) {
	res := common.Result{Time: 0.25, Flops: 1e9, Verified: true}
	p := progressRow("stream", "a64fx", [2]int{4, 12}, "as-is", common.SizeTest,
		3, 6, res, nil, false)
	if err := p.Validate(); err != nil {
		t.Fatalf("fresh row does not validate: %v", err)
	}
	if p.Done != 3 || p.Total != 6 || p.TimeSeconds != 0.25 || !p.Verified || p.Resumed {
		t.Errorf("fresh row = %+v", p)
	}
	if p.GFlops != res.GFlops() {
		t.Errorf("gflops = %g, want %g", p.GFlops, res.GFlops())
	}
}

func TestProgressRowErrorAndResumed(t *testing.T) {
	p := progressRow("stream", "a64fx", [2]int{1, 48}, "tuned", common.SizeSmall,
		1, 6, common.Result{}, errors.New("panic: synthetic"), false)
	if err := p.Validate(); err != nil {
		t.Fatalf("error row does not validate: %v", err)
	}
	if p.Err != "panic: synthetic" || p.TimeSeconds != 0 || p.Verified {
		t.Errorf("error row = %+v", p)
	}

	// A resumed row carries identity and counters but no numbers, even
	// if a (stale) result happens to be lying around.
	p = progressRow("stream", "a64fx", [2]int{48, 1}, "as-is", common.SizeTest,
		2, 6, common.Result{Time: 9, Verified: true}, nil, true)
	if err := p.Validate(); err != nil {
		t.Fatalf("resumed row does not validate: %v", err)
	}
	if !p.Resumed || p.TimeSeconds != 0 || p.Verified || p.Err != "" {
		t.Errorf("resumed row = %+v", p)
	}
}
