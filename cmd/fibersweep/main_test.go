package main

import (
	"testing"

	"fibersim/internal/arch"
	"fibersim/internal/core"
)

func TestDecompsFor(t *testing.T) {
	m := arch.MustLookup("a64fx")
	ds := decompsFor(m)
	if len(ds) == 0 {
		t.Fatal("no decompositions")
	}
	seen48 := false
	for _, d := range ds {
		if d[0]*d[1] != 48 {
			t.Errorf("decomposition %v does not cover 48 cores", d)
		}
		if d[0] == 48 {
			seen48 = true
		}
	}
	if !seen48 {
		t.Error("48x1 missing")
	}
	// K computer: 8 cores.
	for _, d := range decompsFor(arch.MustLookup("k")) {
		if d[0]*d[1] != 8 {
			t.Errorf("K decomposition %v", d)
		}
	}
}

func TestParseCompiler(t *testing.T) {
	cases := map[string]core.CompilerConfig{
		"as-is":  core.AsIs(),
		"nosimd": {SIMD: core.SIMDOff},
		"simd":   {SIMD: core.SIMDEnhanced},
		"sched":  {SIMD: core.SIMDAuto, SoftwarePipelining: true, LoopFission: true},
		"tuned":  core.Tuned(),
	}
	for name, want := range cases {
		got, err := parseCompiler(name)
		if err != nil || got != want {
			t.Errorf("parseCompiler(%q) = %+v, %v", name, got, err)
		}
	}
	if _, err := parseCompiler("O3"); err == nil {
		t.Error("unknown config must fail")
	}
}
