// Command fibersweep runs a free-form configuration sweep of one or
// more miniapps: every decomposition, stride, allocation and compiler
// configuration requested, one result row per run. It is the tool for
// exploring beyond the paper's fixed figures.
//
// Usage:
//
//	fibersweep -app ccsqcd -size small
//	fibersweep -app mvmc,stream -machines a64fx,skylake -compilers as-is,tuned
//	fibersweep -app stream -trace sweep.trace.json -trace-config a64fx:4x12
//	fibersweep -app stream -manifest runs/        # one manifest per run
//	fibersweep -app stream -fault "straggler=0:1.5,noise=200us:20us"
//	fibersweep -app mvmc -resume sweep.state     # crash-safe, restartable
//	fibersweep -app stream -decomps 1x48,4x12,48x1 -selfprofile profiles/
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fibersim/internal/arch"
	"fibersim/internal/core"
	"fibersim/internal/fault"
	"fibersim/internal/harness"
	"fibersim/internal/jobs"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/obs"
	"fibersim/internal/trace"
	"fibersim/internal/vtime"
)

func main() {
	appNames := flag.String("app", "stream", "comma-separated miniapps to sweep")
	size := flag.String("size", "small", "data set: test, small, medium")
	machines := flag.String("machines", "a64fx", "comma-separated machine list")
	compilers := flag.String("compilers", "as-is", "comma-separated compiler configs: as-is, nosimd, simd, sched, tuned")
	decomps := flag.String("decomps", "", `comma-separated decompositions like "1x48,4x12,48x1" (default: the powers-of-two grid of each machine)`)
	stride := flag.Int("stride", 0, "node-level thread stride (0 = compact block placement)")
	traceFile := flag.String("trace", "", "write a chrome://tracing timeline of ONE configuration to this file (see -trace-app/-trace-config)")
	traceApp := flag.String("trace-app", "", "app to trace (default: the first swept)")
	traceConfig := flag.String("trace-config", "", `configuration to trace: "4x12", "machine:4x12" or "machine:4x12:compiler" (default: the first)`)
	manifestDir := flag.String("manifest", "", "write one run-manifest JSON per configuration into this directory")
	csv := flag.Bool("csv", false, "emit CSV")
	faultSpec := flag.String("fault", "", `fault schedule applied to every run, e.g. "seed=7,straggler=0:1.5,noise=200us:20us" (see internal/fault)`)
	resumePath := flag.String("resume", "", "checkpoint file: configurations already recorded there are replayed, not rerun; new rows are appended as they finish")
	retries := flag.Int("retries", 0, "retry a failed run up to N times with doubling backoff before recording the error")
	maxRuns := flag.Int("max-runs", 0, "stop after N fresh (non-resumed) runs; exits 3 if configurations remain")
	progress := flag.Bool("progress", false, "emit one JSON progress line per completed configuration on stderr (machine-readable; fiberd streams it)")
	selfProfileDir := flag.String("selfprofile", "", "write one self-profile JSON (the simulator's own wall/alloc cost) per fresh configuration into this directory")
	flag.Parse()

	// Ctrl-C or SIGTERM cancels the sweep at the next safe point — in
	// particular it aborts a retry backoff immediately instead of
	// sleeping out the schedule. Completed rows are already
	// checkpointed, so an interrupted sweep resumes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sz, err := common.ParseSize(*size)
	if err != nil {
		fatal(err)
	}
	sel, err := parseTraceSelector(*traceApp, *traceConfig)
	if err != nil {
		fatal(err)
	}
	sched, err := fault.ParseSchedule(*faultSpec)
	if err != nil {
		fatal(err)
	}
	state, err := loadState(*resumePath)
	if err != nil {
		fatal(err)
	}
	defer state.Close()
	var apps []common.App
	for _, n := range strings.Split(*appNames, ",") {
		app, err := common.Lookup(strings.TrimSpace(n))
		if err != nil {
			fatal(err)
		}
		apps = append(apps, app)
	}
	if *manifestDir != "" {
		if err := os.MkdirAll(*manifestDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *selfProfileDir != "" {
		if err := os.MkdirAll(*selfProfileDir, 0o755); err != nil {
			fatal(err)
		}
	}
	forcedDecomps, err := parseDecomps(*decomps)
	if err != nil {
		fatal(err)
	}

	t := &harness.Table{
		ID:    "sweep",
		Title: fmt.Sprintf("%s (%s): configuration sweep", *appNames, sz),
		Columns: []string{"app", "machine", "decomp", "compiler", "time", "Gflop/s",
			"figure", "unit", "verified", "comm%"},
	}

	// Pre-parse machines and compilers so the total configuration count
	// is known before the first run: -progress reports done/total.
	var machineList []*arch.Machine
	for _, mn := range strings.Split(*machines, ",") {
		m, err := arch.Lookup(strings.TrimSpace(mn))
		if err != nil {
			fatal(err)
		}
		machineList = append(machineList, m)
	}
	type ccEntry struct {
		name string
		cc   core.CompilerConfig
	}
	var ccList []ccEntry
	for _, cn := range strings.Split(*compilers, ",") {
		cn = strings.TrimSpace(cn)
		cc, err := harness.ParseCompiler(cn)
		if err != nil {
			fatal(err)
		}
		ccList = append(ccList, ccEntry{name: cn, cc: cc})
	}
	decompsOf := func(m *arch.Machine) [][2]int {
		if len(forcedDecomps) > 0 {
			return forcedDecomps
		}
		return decompsFor(m)
	}
	total := 0
	for _, m := range machineList {
		total += len(decompsOf(m)) * len(ccList)
	}
	total *= len(apps)

	traced := false
	freshRuns, doneRuns, truncated := 0, 0, false
sweep:
	for _, app := range apps {
		for _, m := range machineList {
			for _, d := range decompsOf(m) {
				for _, ce := range ccList {
					cn, cc := ce.name, ce.cc
					rc := common.RunConfig{
						Machine: m, Procs: d[0], Threads: d[1],
						Compiler: cc, Size: sz, NodeStride: *stride,
						Fault: sched,
					}
					if *traceFile != "" && !traced && sel.matches(app.Name(), m.Name, d, cn) {
						traced = true
						if err := writeTrace(app, rc, *traceFile); err != nil {
							fatal(err)
						}
					}
					key := fmt.Sprintf("%s|%s|%dx%d|%s", app.Name(), m.Name, d[0], d[1], cc.String())
					if cells, ok := state.done[key]; ok {
						t.AddRow(cells...)
						doneRuns++
						if *progress {
							p := progressRow(app.Name(), m.Name, d, cc.String(), sz,
								doneRuns, total, common.Result{}, nil, true)
							emitProgress(&p)
						}
						continue
					}
					if *maxRuns > 0 && freshRuns >= *maxRuns {
						truncated = true
						break sweep
					}
					var rec *obs.Recorder
					if *manifestDir != "" {
						rec = obs.NewRecorder()
						rec.SetMeta(app.Name(), rc.String())
						rc.Recorder = rec
					}
					var cost *obs.CostRecorder
					if *selfProfileDir != "" {
						cost = obs.NewCostRecorder(time.Now)
						rc.Cost = cost
						cost.Start()
					}
					res, err := runOne(ctx, app, rc, *retries)
					if ctx.Err() != nil {
						state.Close()
						fmt.Fprintln(os.Stderr, "fibersweep: interrupted; completed rows are checkpointed")
						os.Exit(130)
					}
					cost.SnapshotHeap()
					freshRuns++
					var cells []string
					if err != nil {
						cells = []string{app.Name(), m.Name, fmt.Sprintf("%dx%d", d[0], d[1]), cc.String(),
							"error: " + err.Error(), "", "", "", "", ""}
					} else {
						if rec != nil {
							path := filepath.Join(*manifestDir, fmt.Sprintf("%s-%s-%dx%d-%s.json",
								app.Name(), m.Name, d[0], d[1], sanitize(cc.String())))
							renderStart := cost.Begin()
							if err := common.BuildManifest(res, rec).WriteFile(path); err != nil {
								fatal(err)
							}
							cost.End(obs.StageRender, renderStart)
						}
						cells = []string{app.Name(), m.Name,
							fmt.Sprintf("%dx%d", d[0], d[1]),
							cc.String(),
							vtime.Format(res.Time),
							fmt.Sprintf("%.1f", res.GFlops()),
							fmt.Sprintf("%.3g", res.Figure),
							res.FigureUnit,
							fmt.Sprint(res.Verified),
							fmt.Sprintf("%.0f%%", res.Breakdown.Get(vtime.Comm)/res.Time*100),
						}
					}
					t.AddRow(cells...)
					journalStart := cost.Begin()
					if err := state.record(key, cells); err != nil {
						fatal(err)
					}
					cost.End(obs.StageJournal, journalStart)
					cost.Finish()
					if cost != nil {
						prof := cost.Profile(app.Name())
						path := filepath.Join(*selfProfileDir, fmt.Sprintf("selfprofile-%s-%s-%dx%d-%s.json",
							app.Name(), m.Name, d[0], d[1], sanitize(cc.String())))
						if err := prof.WriteFile(path); err != nil {
							fatal(err)
						}
					}
					doneRuns++
					if *progress {
						p := progressRow(app.Name(), m.Name, d, cc.String(), sz,
							doneRuns, total, res, err, false)
						if cost != nil {
							p.WallSeconds = cost.WallSeconds()
							p.HeapPeakBytes = cost.HeapPeakBytes()
						}
						emitProgress(&p)
					}
				}
			}
		}
	}
	if *traceFile != "" && !traced {
		fatal(fmt.Errorf("no swept configuration matched -trace-app=%q -trace-config=%q", *traceApp, *traceConfig))
	}

	if *csv {
		if err := t.CSV(os.Stdout); err != nil {
			fatal(err)
		}
	} else if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if truncated {
		fmt.Fprintf(os.Stderr, "fibersweep: stopped after %d runs (-max-runs); resume with -resume %s\n",
			freshRuns, *resumePath)
		state.Close()
		os.Exit(3)
	}
}

// runOne executes one configuration, converting panics into errors and
// retrying failures on the shared jittered-exponential schedule
// (jobs.Backoff: 100 ms doubling, capped, equal jitter). The simulator
// is deterministic, so retries mostly matter for runs that touch the
// environment (manifest/trace I/O) — but they also keep a sweep alive
// across transient resource exhaustion. Cancelling ctx aborts a
// backoff wait immediately and returns the last attempt's error.
func runOne(ctx context.Context, app common.App, rc common.RunConfig, retries int) (common.Result, error) {
	var bo jobs.Backoff
	for attempt := 0; ; attempt++ {
		res, err := runOnce(app, rc)
		if err == nil || attempt >= retries {
			return res, err
		}
		if serr := jobs.Sleep(ctx, bo.Delay(attempt)); serr != nil {
			return res, err
		}
	}
}

// runOnce is one guarded attempt: a panicking miniapp produces an error
// row, not a dead sweep.
func runOnce(app common.App, rc common.RunConfig) (res common.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return app.Run(rc)
}

// sweepState is the -resume checkpoint: one JSON line per finished
// configuration, holding the key and the fully formatted row cells.
// Replaying cells (rather than rerunning) makes a resumed sweep's
// output byte-identical to an uninterrupted one, and an append-only
// file survives kill -9 — at worst the final, partially written line
// is dropped and that one configuration reruns.
type sweepState struct {
	f    *os.File
	done map[string][]string
}

type stateLine struct {
	Key   string   `json:"key"`
	Cells []string `json:"cells"`
}

// loadState opens (creating if absent) the checkpoint at path and
// replays its rows. An empty path disables checkpointing. record writes
// each line plus its newline in one call, so a newline-terminated line
// is complete; an unterminated tail is the signature of a mid-write
// kill and is truncated away (that configuration simply reruns). A
// malformed line that IS newline-terminated means the file is not a
// fibersweep checkpoint, which is an error, not data loss.
func loadState(path string) (*sweepState, error) {
	s := &sweepState{done: map[string][]string{}}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	good, start, lineno := 0, 0, 0
	for {
		end := bytes.IndexByte(data[start:], '\n')
		if end < 0 {
			break // torn tail from a mid-write kill
		}
		lineno++
		line := strings.TrimSpace(string(data[start : start+end]))
		start += end + 1
		if line != "" {
			var sl stateLine
			if err := json.Unmarshal([]byte(line), &sl); err != nil || sl.Key == "" {
				f.Close()
				return nil, fmt.Errorf("fibersweep: %s:%d: not a fibersweep checkpoint line: %q", path, lineno, line)
			}
			s.done[sl.Key] = sl.Cells
		}
		good = start
	}
	if good < len(data) {
		fmt.Fprintf(os.Stderr, "fibersweep: %s: dropping torn final line (%d bytes) from an interrupted run\n",
			path, len(data)-good)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	return s, nil
}

// record checkpoints one finished configuration, fsyncing so the row
// survives an immediate kill.
func (s *sweepState) record(key string, cells []string) error {
	s.done[key] = cells
	if s.f == nil {
		return nil
	}
	b, err := json.Marshal(stateLine{Key: key, Cells: cells})
	if err != nil {
		return err
	}
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return s.f.Sync()
}

func (s *sweepState) Close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// traceSelector picks which swept configuration gets the timeline; an
// empty field is a wildcard, so the zero selector matches the first
// configuration (the historical behaviour, now explicit).
type traceSelector struct {
	app, machine, decomp, compiler string
}

// parseTraceSelector parses -trace-app/-trace-config. The config
// grammar is "DECOMP", "MACHINE:DECOMP" or "MACHINE:DECOMP:COMPILER"
// with DECOMP of the form "4x12".
func parseTraceSelector(app, config string) (traceSelector, error) {
	sel := traceSelector{app: app}
	if config == "" {
		return sel, nil
	}
	parts := strings.Split(config, ":")
	switch len(parts) {
	case 1:
		sel.decomp = parts[0]
	case 2:
		sel.machine, sel.decomp = parts[0], parts[1]
	case 3:
		sel.machine, sel.decomp, sel.compiler = parts[0], parts[1], parts[2]
	default:
		return sel, fmt.Errorf(`fibersweep: -trace-config %q: want "4x12", "machine:4x12" or "machine:4x12:compiler"`, config)
	}
	if sel.decomp != "" && !strings.Contains(sel.decomp, "x") {
		return sel, fmt.Errorf("fibersweep: -trace-config decomposition %q: want the form 4x12", sel.decomp)
	}
	return sel, nil
}

func (s traceSelector) matches(app, machine string, d [2]int, compiler string) bool {
	if s.app != "" && s.app != app {
		return false
	}
	if s.machine != "" && s.machine != machine {
		return false
	}
	if s.decomp != "" && s.decomp != fmt.Sprintf("%dx%d", d[0], d[1]) {
		return false
	}
	if s.compiler != "" && s.compiler != compiler {
		return false
	}
	return true
}

// sanitize makes a compiler-config string safe as a filename fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', ' ', ':':
			return '_'
		}
		return r
	}, s)
}

// parseDecomps parses the -decomps override: comma-separated PxT
// entries like "1x48,4x12,48x1". Empty means "use the per-machine
// default grid". Shapes a machine cannot actually run surface as
// per-run error rows, not parse errors — the flag only checks form.
func parseDecomps(s string) ([][2]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out [][2]int
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		px, tx, ok := strings.Cut(ent, "x")
		p, err1 := strconv.Atoi(px)
		th, err2 := strconv.Atoi(tx)
		if !ok || err1 != nil || err2 != nil || p < 1 || th < 1 {
			return nil, fmt.Errorf("fibersweep: -decomps entry %q: want the form 4x12", ent)
		}
		out = append(out, [2]int{p, th})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fibersweep: -decomps %q names no decompositions", s)
	}
	return out, nil
}

// decompsFor returns the decomposition grid for a machine: powers of
// two (plus the full spread) that divide its core count.
func decompsFor(m *arch.Machine) [][2]int {
	total := m.TotalCores()
	var out [][2]int
	for p := 1; p <= total; p *= 2 {
		if total%p == 0 {
			out = append(out, [2]int{p, total / p})
		}
	}
	if total != 1 && (len(out) == 0 || out[len(out)-1][0] != total) {
		out = append(out, [2]int{total, 1})
	}
	return out
}

// writeTrace reruns one configuration with tracing enabled and dumps
// the chrome://tracing timeline. The app's Run does not expose the MPI
// result, so the trace run goes through the harness-free path: rerun
// the app with TraceCapacity set and pull the logs from the library.
func writeTrace(app common.App, rc common.RunConfig, path string) error {
	rc.TraceCapacity = 1 << 16
	res, err := app.Run(rc)
	if err != nil {
		return err
	}
	if res.Traces == nil {
		return fmt.Errorf("fibersweep: app produced no trace (miniapp predates tracing?)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteChrome(f, res.Traces...); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fibersweep: wrote timeline of %s (%s) to %s\n", app.Name(), rc.String(), path)
	return nil
}

// progressRow builds the machine-readable progress line for one
// finished configuration: numbers for a fresh success, the error text
// for a failed run, and the bare identity for a resumed row (whose
// numbers live only as formatted cells in the checkpoint).
func progressRow(appName, machine string, d [2]int, compiler string, sz common.Size,
	done, total int, res common.Result, runErr error, resumed bool) obs.SweepProgress {
	p := obs.SweepProgress{
		Schema: obs.ProgressSchema,
		App:    appName, Machine: machine,
		Procs: d[0], Threads: d[1],
		Compiler: compiler, Size: sz.String(),
		Done: done, Total: total,
		Resumed: resumed,
	}
	switch {
	case resumed:
	case runErr != nil:
		p.Err = runErr.Error()
	default:
		p.TimeSeconds = res.Time
		p.GFlops = res.GFlops()
		p.Verified = res.Verified
	}
	return p
}

// emitProgress writes one progress line to stderr (stdout is reserved
// for the result table). A progress line that fails to encode is a
// bug worth dying for: consumers like fiberd trust the stream.
func emitProgress(p *obs.SweepProgress) {
	if err := p.Encode(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fibersweep:", err)
	os.Exit(1)
}
