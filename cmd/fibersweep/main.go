// Command fibersweep runs a free-form configuration sweep of one
// miniapp: every decomposition, stride, allocation and compiler
// configuration requested, one result row per run. It is the tool for
// exploring beyond the paper's fixed figures.
//
// Usage:
//
//	fibersweep -app ccsqcd -size small
//	fibersweep -app mvmc -machines a64fx,skylake -compilers as-is,tuned
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fibersim/internal/arch"
	"fibersim/internal/core"
	"fibersim/internal/harness"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/trace"
	"fibersim/internal/vtime"
)

func main() {
	appName := flag.String("app", "stream", "miniapp to sweep")
	size := flag.String("size", "small", "data set: test, small, medium")
	machines := flag.String("machines", "a64fx", "comma-separated machine list")
	compilers := flag.String("compilers", "as-is", "comma-separated compiler configs: as-is, nosimd, simd, sched, tuned")
	stride := flag.Int("stride", 0, "node-level thread stride (0 = compact block placement)")
	traceFile := flag.String("trace", "", "write a chrome://tracing timeline of the FIRST configuration to this file")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	app, err := common.Lookup(*appName)
	if err != nil {
		fatal(err)
	}
	sz, err := common.ParseSize(*size)
	if err != nil {
		fatal(err)
	}

	t := &harness.Table{
		ID:    "sweep",
		Title: fmt.Sprintf("%s (%s): configuration sweep", app.Name(), sz),
		Columns: []string{"machine", "decomp", "compiler", "time", "Gflop/s",
			"figure", "unit", "verified", "comm%"},
	}

	traced := false
	for _, mn := range strings.Split(*machines, ",") {
		m, err := arch.Lookup(strings.TrimSpace(mn))
		if err != nil {
			fatal(err)
		}
		for _, d := range decompsFor(m) {
			for _, cn := range strings.Split(*compilers, ",") {
				cc, err := parseCompiler(strings.TrimSpace(cn))
				if err != nil {
					fatal(err)
				}
				rc := common.RunConfig{
					Machine: m, Procs: d[0], Threads: d[1],
					Compiler: cc, Size: sz, NodeStride: *stride,
				}
				if *traceFile != "" && !traced {
					traced = true
					if err := writeTrace(app, rc, *traceFile); err != nil {
						fatal(err)
					}
				}
				res, err := app.Run(rc)
				if err != nil {
					t.AddRow(m.Name, fmt.Sprintf("%dx%d", d[0], d[1]), cc.String(),
						"error: "+err.Error(), "", "", "", "", "")
					continue
				}
				t.AddRow(m.Name,
					fmt.Sprintf("%dx%d", d[0], d[1]),
					cc.String(),
					vtime.Format(res.Time),
					fmt.Sprintf("%.1f", res.GFlops()),
					fmt.Sprintf("%.3g", res.Figure),
					res.FigureUnit,
					fmt.Sprint(res.Verified),
					fmt.Sprintf("%.0f%%", res.Breakdown.Get(vtime.Comm)/res.Time*100),
				)
			}
		}
	}

	if *csv {
		if err := t.CSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// decompsFor returns the decomposition grid for a machine: powers of
// two (plus the full spread) that divide its core count.
func decompsFor(m *arch.Machine) [][2]int {
	total := m.TotalCores()
	var out [][2]int
	for p := 1; p <= total; p *= 2 {
		if total%p == 0 {
			out = append(out, [2]int{p, total / p})
		}
	}
	if total != 1 && (len(out) == 0 || out[len(out)-1][0] != total) {
		out = append(out, [2]int{total, 1})
	}
	return out
}

// parseCompiler maps a sweep name to a configuration.
func parseCompiler(name string) (core.CompilerConfig, error) {
	switch name {
	case "as-is", "asis":
		return core.AsIs(), nil
	case "nosimd":
		return core.CompilerConfig{SIMD: core.SIMDOff}, nil
	case "simd":
		return core.CompilerConfig{SIMD: core.SIMDEnhanced}, nil
	case "sched":
		return core.CompilerConfig{SIMD: core.SIMDAuto, SoftwarePipelining: true, LoopFission: true}, nil
	case "tuned":
		return core.Tuned(), nil
	}
	return core.CompilerConfig{}, fmt.Errorf("fibersweep: unknown compiler config %q", name)
}

// writeTrace reruns one configuration with tracing enabled and dumps
// the chrome://tracing timeline. The app's Run does not expose the MPI
// result, so the trace run goes through the harness-free path: rerun
// the app with TraceCapacity set and pull the logs from the library.
func writeTrace(app common.App, rc common.RunConfig, path string) error {
	rc.TraceCapacity = 1 << 16
	res, err := app.Run(rc)
	if err != nil {
		return err
	}
	if res.Traces == nil {
		return fmt.Errorf("fibersweep: app produced no trace (miniapp predates tracing?)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteChrome(f, res.Traces...); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fibersweep: wrote timeline of %s (%s) to %s\n", app.Name(), rc.String(), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fibersweep:", err)
	os.Exit(1)
}
