// Command fiberlint is fibersim's static-analysis suite. It runs two
// prongs in one pass:
//
//   - five source analyzers (floatcmp, rawkernel, magicconst,
//     errchecklite, barepanic) over the module's Go packages, built on go/parser
//     and go/types only — see internal/lint;
//   - the kernel-IR verifier (rule kernelir): every registered
//     miniapp's kernel descriptors, for every data-set size, are
//     checked for physical plausibility — see loopir.AnalyzeKernels.
//
// Usage:
//
//	fiberlint [-rules list] [-no-ir] [-v] [packages]
//
// where packages defaults to ./... resolved against the enclosing
// module. Exit status is 1 when any diagnostic is reported, 2 on
// driver errors. Suppress a finding with a trailing or preceding
// comment: //fiberlint:ignore <rule> reason
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fibersim/internal/lint"
	"fibersim/internal/loopir"
	"fibersim/internal/miniapps/common"

	// Register the full suite so the IR verifier sees every app.
	_ "fibersim/internal/miniapps/all"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without os.Exit, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fiberlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset (floatcmp,rawkernel,magicconst,errchecklite,barepanic,kernelir); empty = all")
	noIR := fs.Bool("no-ir", false, "skip the kernel-IR verifier over the registered miniapps")
	verbose := fs.Bool("v", false, "report packages analyzed and soft type errors")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	known := map[string]bool{loopir.RuleIR: true}
	for _, a := range lint.DefaultAnalyzers() {
		known[a.Name] = true
	}
	enabled := map[string]bool{}
	for _, r := range strings.Split(*rules, ",") {
		if r = strings.TrimSpace(r); r == "" {
			continue
		}
		// A typo'd rule name must not silently disable the whole gate.
		if !known[r] {
			fmt.Fprintf(stderr, "fiberlint: unknown rule %q (known: floatcmp, rawkernel, magicconst, errchecklite, barepanic, kernelir)\n", r)
			return 2
		}
		enabled[r] = true
	}
	on := func(rule string) bool { return len(enabled) == 0 || enabled[rule] }

	var analyzers []*lint.Analyzer
	for _, a := range lint.DefaultAnalyzers() {
		if on(a.Name) {
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "fiberlint:", err)
		return 2
	}
	root, err := lint.FindRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "fiberlint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "fiberlint:", err)
		return 2
	}

	var diags []lint.Diagnostic
	if len(analyzers) > 0 {
		pkgs, err := mod.Load(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "fiberlint:", err)
			return 2
		}
		if *verbose {
			for _, p := range pkgs {
				fmt.Fprintf(stderr, "fiberlint: analyzing %s (%d files)\n", p.Path, len(p.Files))
				for _, te := range p.TypeErrors {
					fmt.Fprintf(stderr, "fiberlint: type error (analysis degrades): %v\n", te)
				}
			}
		}
		diags = lint.Run(pkgs, analyzers)
	}

	if !*noIR && on(loopir.RuleIR) {
		irDiags := verifyKernelIR()
		lint.Sort(irDiags)
		diags = append(diags, irDiags...)
	}

	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fiberlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// verifyKernelIR runs the semantic pass over every registered
// miniapp's descriptors at every data-set size.
func verifyKernelIR() []lint.Diagnostic {
	var out []lint.Diagnostic
	sizes := []common.Size{common.SizeTest, common.SizeSmall, common.SizeMedium}
	for _, name := range common.Names() {
		app := common.MustLookup(name)
		for _, size := range sizes {
			owner := fmt.Sprintf("%s/%s", name, size)
			out = append(out, loopir.AnalyzeKernels(owner, app.Kernels(size))...)
		}
	}
	return out
}
