// Command fiberlint is fibersim's static-analysis suite. It runs two
// prongs in one pass:
//
//   - nine source analyzers over the module's Go packages, built on
//     go/parser and go/types only — see internal/lint. Six are
//     single-package AST rules (floatcmp, rawkernel, magicconst,
//     errchecklite, barepanic, nakedretry); three ride the dataflow
//     engine (nondet, concsafety, unitcheck), which builds a module
//     call graph and value-origin summaries across packages;
//   - the kernel-IR verifier (rule kernelir): every registered
//     miniapp's kernel descriptors, for every data-set size, are
//     checked for physical plausibility — see loopir.AnalyzeKernels.
//
// Usage:
//
//	fiberlint [-rules list] [-format text|json|github] [-no-ir] [-v] [packages]
//
// where packages defaults to ./... resolved against the enclosing
// module. Exit status is 1 when any diagnostic is reported, 2 on
// driver errors. Suppress a finding with a trailing or preceding
// comment: //fiberlint:ignore <rule> reason
//
// -format selects the output encoding: "text" (default) prints one
// compiler-style line per finding; "json" emits one document with
// schema fibersim/lint-findings/v1 for tooling; "github" emits GitHub
// Actions workflow commands so findings surface as PR annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fibersim/internal/lint"
	"fibersim/internal/loopir"
	"fibersim/internal/miniapps/common"

	// Register the full suite so the IR verifier sees every app.
	_ "fibersim/internal/miniapps/all"
)

// FindingsSchema identifies the -format=json document layout; bump on
// any incompatible change.
const FindingsSchema = "fibersim/lint-findings/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without os.Exit, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fiberlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset; empty = all (see -help for names)")
	format := fs.String("format", "text", "output format: text, json (schema "+FindingsSchema+"), or github (workflow-command annotations)")
	noIR := fs.Bool("no-ir", false, "skip the kernel-IR verifier over the registered miniapps")
	verbose := fs.Bool("v", false, "report packages analyzed and soft type errors")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	emit, ok := emitters[*format]
	if !ok {
		fmt.Fprintf(stderr, "fiberlint: unknown format %q (known: text, json, github)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	known := map[string]bool{loopir.RuleIR: true}
	names := []string{loopir.RuleIR}
	for _, a := range lint.DefaultAnalyzers() {
		known[a.Name] = true
		names = append(names, a.Name)
	}
	enabled := map[string]bool{}
	for _, r := range strings.Split(*rules, ",") {
		if r = strings.TrimSpace(r); r == "" {
			continue
		}
		// A typo'd rule name must not silently disable the whole gate.
		if !known[r] {
			fmt.Fprintf(stderr, "fiberlint: unknown rule %q (known: %s)\n", r, strings.Join(names, ", "))
			return 2
		}
		enabled[r] = true
	}
	on := func(rule string) bool { return len(enabled) == 0 || enabled[rule] }

	var analyzers []*lint.Analyzer
	for _, a := range lint.DefaultAnalyzers() {
		if on(a.Name) {
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "fiberlint:", err)
		return 2
	}
	root, err := lint.FindRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "fiberlint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "fiberlint:", err)
		return 2
	}

	var diags []lint.Diagnostic
	if len(analyzers) > 0 {
		pkgs, err := mod.Load(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "fiberlint:", err)
			return 2
		}
		if *verbose {
			for _, p := range pkgs {
				fmt.Fprintf(stderr, "fiberlint: analyzing %s (%d files)\n", p.Path, len(p.Files))
				for _, te := range p.TypeErrors {
					fmt.Fprintf(stderr, "fiberlint: type error (analysis degrades): %v\n", te)
				}
			}
		}
		diags = lint.Run(pkgs, analyzers)
	}

	if !*noIR && on(loopir.RuleIR) {
		irDiags := verifyKernelIR()
		lint.Sort(irDiags)
		diags = append(diags, irDiags...)
	}

	if err := emit(stdout, diags); err != nil {
		fmt.Fprintln(stderr, "fiberlint:", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fiberlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// emitters maps -format values to output encoders.
var emitters = map[string]func(io.Writer, []lint.Diagnostic) error{
	"text":   emitText,
	"json":   emitJSON,
	"github": emitGitHub,
}

// emitText prints one compiler-style line per finding.
func emitText(w io.Writer, diags []lint.Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// finding is one diagnostic in the JSON document.
type finding struct {
	File string `json:"file"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// emitJSON writes the whole run as one fibersim/lint-findings/v1
// document; a clean run emits the document too (count zero), so
// consumers need no exit-status special case.
func emitJSON(w io.Writer, diags []lint.Diagnostic) error {
	doc := struct {
		Schema   string    `json:"schema"`
		Findings []finding `json:"findings"`
		Count    int       `json:"count"`
	}{Schema: FindingsSchema, Findings: []finding{}, Count: len(diags)}
	for _, d := range diags {
		doc.Findings = append(doc.Findings, finding{
			File: d.File, Line: d.Line, Col: d.Col, Rule: d.Rule, Msg: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitGitHub writes GitHub Actions workflow commands, one error
// annotation per finding. Kernel-IR findings have no source position
// (their File is an ir: locus), so they annotate without file/line and
// carry the locus in the message.
func emitGitHub(w io.Writer, diags []lint.Diagnostic) error {
	for _, d := range diags {
		var err error
		if d.Line > 0 {
			_, err = fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=fiberlint %s::%s\n",
				d.File, d.Line, d.Col, d.Rule, escapeGitHub(d.Msg))
		} else {
			_, err = fmt.Fprintf(w, "::error title=fiberlint %s::%s: %s\n",
				d.Rule, d.File, escapeGitHub(d.Msg))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// escapeGitHub encodes the characters the workflow-command grammar
// reserves in message data.
func escapeGitHub(s string) string {
	return strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(s)
}

// verifyKernelIR runs the semantic pass over every registered
// miniapp's descriptors at every data-set size.
func verifyKernelIR() []lint.Diagnostic {
	var out []lint.Diagnostic
	sizes := []common.Size{common.SizeTest, common.SizeSmall, common.SizeMedium}
	for _, name := range common.Names() {
		app := common.MustLookup(name)
		for _, size := range sizes {
			owner := fmt.Sprintf("%s/%s", name, size)
			out = append(out, loopir.AnalyzeKernels(owner, app.Kernels(size))...)
		}
	}
	return out
}
