package main

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// runLint invokes run() the way main does, capturing both streams.
// The test's working directory is cmd/fiberlint; FindRoot ascends to
// the module root, and package patterns resolve against that root.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestBadFixturesFail(t *testing.T) {
	cases := []struct {
		rule string
		dir  string
	}{
		{"floatcmp", "./internal/lint/testdata/src/floatcmp_bad"},
		{"rawkernel", "./internal/lint/testdata/src/rawkernel_bad"},
		{"magicconst", "./internal/lint/testdata/src/internal/harness/magicconst_bad"},
		{"errchecklite", "./internal/lint/testdata/src/errcheck_bad"},
		{"nondet", "./internal/lint/testdata/src/internal/model/nondet_bad"},
		{"concsafety", "./internal/lint/testdata/src/concsafety_bad"},
		{"unitcheck", "./internal/lint/testdata/src/unitcheck_bad"},
	}
	loc := regexp.MustCompile(`bad\.go:\d+:\d+: `)
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			code, stdout, stderr := runLint(t, "-no-ir", "-rules", tc.rule, tc.dir)
			if code != 1 {
				t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
			}
			if !strings.Contains(stdout, tc.rule+": ") {
				t.Errorf("stdout lacks rule %q:\n%s", tc.rule, stdout)
			}
			if !loc.MatchString(stdout) {
				t.Errorf("stdout lacks file:line:col positions:\n%s", stdout)
			}
		})
	}
}

func TestGoodFixturePasses(t *testing.T) {
	code, stdout, stderr := runLint(t, "-no-ir", "./internal/lint/testdata/src/rawkernel_good")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// TestKernelIROnly drives only the IR verifier: the registered suite
// must be clean, and no source is loaded at all.
func TestKernelIROnly(t *testing.T) {
	code, stdout, stderr := runLint(t, "-rules", "kernelir")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runLint(t, "-bogus"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestUnknownRuleExitsTwo guards the CI gate: a typo'd -rules value
// must fail loudly, not silently disable every analyzer.
func TestUnknownRuleExitsTwo(t *testing.T) {
	code, _, stderr := runLint(t, "-rules", "floatcomp")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown rule "floatcomp"`) {
		t.Errorf("stderr lacks unknown-rule message:\n%s", stderr)
	}
	// The message must name every current rule, or the hint rots.
	for _, rule := range []string{"nondet", "concsafety", "unitcheck", "kernelir"} {
		if !strings.Contains(stderr, rule) {
			t.Errorf("unknown-rule message does not list %q:\n%s", rule, stderr)
		}
	}
}

func TestUnknownFormatExitsTwo(t *testing.T) {
	code, _, stderr := runLint(t, "-format", "xml")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown format "xml"`) {
		t.Errorf("stderr lacks unknown-format message:\n%s", stderr)
	}
}

// TestJSONFormat pins the fibersim/lint-findings/v1 document shape on
// both a failing and a clean run: consumers get one well-formed
// document either way.
func TestJSONFormat(t *testing.T) {
	code, stdout, stderr := runLint(t, "-no-ir", "-format", "json",
		"-rules", "floatcmp", "./internal/lint/testdata/src/floatcmp_bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	var doc struct {
		Schema   string `json:"schema"`
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, stdout)
	}
	if doc.Schema != FindingsSchema {
		t.Errorf("schema %q, want %q", doc.Schema, FindingsSchema)
	}
	if doc.Count == 0 || doc.Count != len(doc.Findings) {
		t.Errorf("count %d inconsistent with %d findings", doc.Count, len(doc.Findings))
	}
	for _, f := range doc.Findings {
		if f.Rule != "floatcmp" || f.Line == 0 || !strings.HasSuffix(f.File, "bad.go") {
			t.Errorf("malformed finding: %+v", f)
		}
	}

	code, stdout, stderr = runLint(t, "-no-ir", "-format", "json",
		"./internal/lint/testdata/src/rawkernel_good")
	if code != 0 {
		t.Fatalf("clean run exit %d, want 0; stderr: %s", code, stderr)
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("clean run stdout is not one JSON document: %v\n%s", err, stdout)
	}
	if doc.Count != 0 || doc.Findings == nil || len(doc.Findings) != 0 {
		t.Errorf("clean run document should carry an empty findings array: %s", stdout)
	}
}

// TestGitHubFormat pins the workflow-command annotation shape.
func TestGitHubFormat(t *testing.T) {
	code, stdout, stderr := runLint(t, "-no-ir", "-format", "github",
		"-rules", "floatcmp", "./internal/lint/testdata/src/floatcmp_bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	ann := regexp.MustCompile(`^::error file=.*bad\.go,line=\d+,col=\d+,title=fiberlint floatcmp::.+$`)
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if !ann.MatchString(line) {
			t.Errorf("line is not a well-formed annotation: %q", line)
		}
	}
}
