package main

import (
	"regexp"
	"strings"
	"testing"
)

// runLint invokes run() the way main does, capturing both streams.
// The test's working directory is cmd/fiberlint; FindRoot ascends to
// the module root, and package patterns resolve against that root.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestBadFixturesFail(t *testing.T) {
	cases := []struct {
		rule string
		dir  string
	}{
		{"floatcmp", "./internal/lint/testdata/src/floatcmp_bad"},
		{"rawkernel", "./internal/lint/testdata/src/rawkernel_bad"},
		{"magicconst", "./internal/lint/testdata/src/internal/harness/magicconst_bad"},
		{"errchecklite", "./internal/lint/testdata/src/errcheck_bad"},
	}
	loc := regexp.MustCompile(`bad\.go:\d+:\d+: `)
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			code, stdout, stderr := runLint(t, "-no-ir", "-rules", tc.rule, tc.dir)
			if code != 1 {
				t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
			}
			if !strings.Contains(stdout, tc.rule+": ") {
				t.Errorf("stdout lacks rule %q:\n%s", tc.rule, stdout)
			}
			if !loc.MatchString(stdout) {
				t.Errorf("stdout lacks file:line:col positions:\n%s", stdout)
			}
		})
	}
}

func TestGoodFixturePasses(t *testing.T) {
	code, stdout, stderr := runLint(t, "-no-ir", "./internal/lint/testdata/src/rawkernel_good")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// TestKernelIROnly drives only the IR verifier: the registered suite
// must be clean, and no source is loaded at all.
func TestKernelIROnly(t *testing.T) {
	code, stdout, stderr := runLint(t, "-rules", "kernelir")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runLint(t, "-bogus"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestUnknownRuleExitsTwo guards the CI gate: a typo'd -rules value
// must fail loudly, not silently disable every analyzer.
func TestUnknownRuleExitsTwo(t *testing.T) {
	code, _, stderr := runLint(t, "-rules", "floatcomp")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown rule "floatcomp"`) {
		t.Errorf("stderr lacks unknown-rule message:\n%s", stderr)
	}
}
