// Command fiberbench runs one experiment of the paper and prints the
// regenerated table or figure, or — with -app — runs a single
// instrumented configuration and emits its observability artefacts
// (run manifest, bottleneck report, metrics exposition, timeline).
//
// Usage:
//
//	fiberbench -exp F1                 # decomposition sweep, small size
//	fiberbench -exp F4 -size test      # compiler tuning, test size
//	fiberbench -exp F5 -apps ccsqcd,mvmc
//	fiberbench -exp T3 -csv            # machine-readable output
//
//	fiberbench -app stream -size test -manifest run.json -report
//	fiberbench -app ccsqcd -procs 4 -threads 12 -trace run.trace.json
//	fiberbench -app mvmc -metrics -        # Prometheus text to stdout
//	fiberbench -app stream -selfprofile self.json -cpuprofile cpu.pprof
//
// Experiment ids map to the paper artefacts; run `fiberinfo
// -experiments` for the index. Single-run mode exits non-zero when the
// app's verification fails, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fibersim/internal/arch"
	"fibersim/internal/fault"
	"fibersim/internal/harness"
	_ "fibersim/internal/miniapps/all"
	"fibersim/internal/miniapps/common"
	"fibersim/internal/obs"
	"fibersim/internal/trace"
)

func main() {
	exp := flag.String("exp", "", "experiment id (T1..T3, F1..F6); empty runs everything")
	size := flag.String("size", "small", "data set: test, small, medium")
	apps := flag.String("apps", "", "comma-separated miniapp subset (default: full suite)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit JSON instead of an aligned table")
	chart := flag.String("chart", "", "additionally draw an ASCII bar chart of this column")

	// Single-run mode.
	appName := flag.String("app", "", "run ONE miniapp instead of an experiment")
	machine := flag.String("machine", "a64fx", "single run: target machine")
	procs := flag.Int("procs", 0, "single run: MPI ranks (0 = machine default decomposition)")
	threads := flag.Int("threads", 0, "single run: OpenMP threads per rank")
	stride := flag.Int("stride", 0, "single run: node-level thread stride")
	compiler := flag.String("compiler", "as-is", "single run: compiler config (as-is, nosimd, simd, sched, tuned)")
	manifest := flag.String("manifest", "", "single run: write the run manifest JSON to this file (- for stdout)")
	report := flag.Bool("report", false, "single run: print the bottleneck report")
	topK := flag.Int("topk", 10, "single run: kernels shown in the report")
	metrics := flag.String("metrics", "", "single run: write Prometheus text exposition to this file (- for stdout)")
	traceFile := flag.String("trace", "", "single run: write a chrome://tracing timeline to this file")
	faultSpec := flag.String("fault", "", `single run: fault schedule, e.g. "seed=7,straggler=0:1.5,noise=200us:20us,crash=1:2ms" (see internal/fault)`)
	selfProfile := flag.String("selfprofile", "", "single run: write a self-profile JSON (the simulator's own wall/alloc cost) to this file (- for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "single run: additionally capture a pprof CPU profile to this file")
	heapProfile := flag.String("heapprofile", "", "single run: additionally capture a pprof heap profile to this file")
	flag.Parse()

	sz, err := common.ParseSize(*size)
	if err != nil {
		fatal(err)
	}

	if *appName != "" {
		runSingle(singleOpts{
			app: *appName, machine: *machine, size: sz,
			procs: *procs, threads: *threads, stride: *stride,
			compiler: *compiler, manifest: *manifest, report: *report,
			topK: *topK, metrics: *metrics, traceFile: *traceFile,
			fault: *faultSpec, selfProfile: *selfProfile,
			cpuProfile: *cpuProfile, heapProfile: *heapProfile,
		})
		return
	}
	if *faultSpec != "" {
		fatal(fmt.Errorf("-fault applies to single-run mode only (use with -app; sweeps take it via fibersweep)"))
	}
	if *selfProfile != "" || *cpuProfile != "" || *heapProfile != "" {
		fatal(fmt.Errorf("-selfprofile/-cpuprofile/-heapprofile apply to single-run mode only (use with -app)"))
	}

	opt := harness.Options{Size: sz}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}

	var list []harness.Experiment
	if *exp == "" {
		list = harness.Experiments()
	} else {
		e, err := harness.LookupExperiment(*exp)
		if err != nil {
			fatal(err)
		}
		list = []harness.Experiment{e}
	}

	for _, e := range list {
		t, err := e.Run(opt)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		switch {
		case *csv:
			if err := t.CSV(os.Stdout); err != nil {
				fatal(err)
			}
		case *jsonOut:
			if err := t.JSON(os.Stdout); err != nil {
				fatal(err)
			}
		default:
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *chart != "" {
			if err := t.RenderBars(os.Stdout, *chart); err != nil {
				fatal(err)
			}
		}
	}
}

type singleOpts struct {
	app, machine       string
	size               common.Size
	procs, threads     int
	stride             int
	compiler           string
	manifest           string
	report             bool
	topK               int
	metrics, traceFile string
	fault              string
	selfProfile        string
	cpuProfile         string
	heapProfile        string
}

// runSingle executes one fully instrumented configuration and emits
// the requested observability artefacts.
func runSingle(o singleOpts) {
	app, err := common.Lookup(o.app)
	if err != nil {
		fatal(err)
	}
	m, err := arch.Lookup(o.machine)
	if err != nil {
		fatal(err)
	}
	cc, err := harness.ParseCompiler(o.compiler)
	if err != nil {
		fatal(err)
	}
	sched, err := fault.ParseSchedule(o.fault)
	if err != nil {
		fatal(err)
	}
	if o.procs == 0 && o.threads == 0 {
		// Default decomposition: one rank per NUMA domain.
		o.procs = len(m.Domains)
		o.threads = m.TotalCores() / o.procs
	}

	rec := obs.NewRecorder()
	rc := common.RunConfig{
		Machine: m, Procs: o.procs, Threads: o.threads,
		NodeStride: o.stride, Compiler: cc, Size: o.size,
		Recorder: rec, Fault: sched,
	}
	if o.traceFile != "" {
		rc.TraceCapacity = 1 << 16
	}
	rec.SetMeta(app.Name(), rc.Normalized().String())

	var cost *obs.CostRecorder
	if o.selfProfile != "" {
		cost = obs.NewCostRecorder(time.Now)
		rc.Cost = cost
	}
	stopCPU := func() {}
	if o.cpuProfile != "" {
		stop, err := obs.StartCPUProfile(o.cpuProfile)
		if err != nil {
			fatal(err)
		}
		stopCPU = stop
	}
	cost.Start()
	res, err := app.Run(rc)
	cost.SnapshotHeap()
	cost.Finish()
	stopCPU()
	if err != nil {
		fatal(err)
	}
	doc := common.BuildManifest(res, rec)

	if o.selfProfile != "" {
		prof := cost.Profile(app.Name())
		if o.cpuProfile != "" {
			prof.CPUProfile = o.cpuProfile
		}
		if o.heapProfile != "" {
			prof.HeapProfile = o.heapProfile
		}
		if err := writeTo(o.selfProfile, prof.Encode); err != nil {
			fatal(err)
		}
		if o.selfProfile != "-" {
			if err := prof.WriteReport(os.Stderr, 0); err != nil {
				fatal(err)
			}
		}
	}
	if o.heapProfile != "" {
		if err := obs.WriteHeapProfile(o.heapProfile); err != nil {
			fatal(err)
		}
	}

	if o.manifest != "" {
		if err := writeTo(o.manifest, doc.Encode); err != nil {
			fatal(err)
		}
	}
	if o.metrics != "" {
		if err := writeTo(o.metrics, rec.Registry().WritePrometheus); err != nil {
			fatal(err)
		}
	}
	if o.traceFile != "" {
		if res.Traces == nil {
			fatal(fmt.Errorf("app %s produced no trace", app.Name()))
		}
		if err := writeTo(o.traceFile, func(w io.Writer) error {
			return trace.WriteChrome(w, res.Traces...)
		}); err != nil {
			fatal(err)
		}
	}
	if o.report {
		if err := obs.WriteReport(os.Stdout, doc, o.topK); err != nil {
			fatal(err)
		}
	} else if o.manifest != "-" && o.metrics != "-" {
		fmt.Printf("%s %s: time=%.6gs gflops=%.1f verified=%v\n",
			app.Name(), rc.String(), res.Time, res.GFlops(), res.Verified)
	}
	if !res.Verified {
		fatal(fmt.Errorf("%s verification FAILED (check=%g)", app.Name(), res.Check))
	}
}

// writeTo writes via emit to path, with "-" meaning stdout.
func writeTo(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiberbench:", err)
	os.Exit(1)
}
