// Command fiberbench runs one experiment of the paper and prints the
// regenerated table or figure.
//
// Usage:
//
//	fiberbench -exp F1                 # decomposition sweep, small size
//	fiberbench -exp F4 -size test      # compiler tuning, test size
//	fiberbench -exp F5 -apps ccsqcd,mvmc
//	fiberbench -exp T3 -csv            # machine-readable output
//
// Experiment ids map to the paper artefacts; run `fiberinfo
// -experiments` for the index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fibersim/internal/harness"
	"fibersim/internal/miniapps/common"
)

func main() {
	exp := flag.String("exp", "", "experiment id (T1..T3, F1..F6); empty runs everything")
	size := flag.String("size", "small", "data set: test, small, medium")
	apps := flag.String("apps", "", "comma-separated miniapp subset (default: full suite)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit JSON instead of an aligned table")
	chart := flag.String("chart", "", "additionally draw an ASCII bar chart of this column")
	flag.Parse()

	sz, err := common.ParseSize(*size)
	if err != nil {
		fatal(err)
	}
	opt := harness.Options{Size: sz}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}

	var list []harness.Experiment
	if *exp == "" {
		list = harness.Experiments()
	} else {
		e, err := harness.LookupExperiment(*exp)
		if err != nil {
			fatal(err)
		}
		list = []harness.Experiment{e}
	}

	for _, e := range list {
		t, err := e.Run(opt)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		switch {
		case *csv:
			if err := t.CSV(os.Stdout); err != nil {
				fatal(err)
			}
		case *jsonOut:
			if err := t.JSON(os.Stdout); err != nil {
				fatal(err)
			}
		default:
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *chart != "" {
			if err := t.RenderBars(os.Stdout, *chart); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiberbench:", err)
	os.Exit(1)
}
