module fibersim

go 1.22
